//! The Hungarian (Kuhn-Munkres) algorithm for minimum-cost assignment,
//! used by the paper to associate detection windows with ground-truth
//! annotations under the `S_eyes` cost (§VI-B, reference 30 of the paper).
//!
//! O(n^3) shortest-augmenting-path formulation over a rectangular cost
//! matrix (rows = detections, columns = annotations); when rows exceed
//! columns the surplus rows stay unassigned.

/// Solve min-cost assignment. `cost[r][c]` is the cost of assigning row
/// `r` to column `c`; entries may be `f64::INFINITY` to forbid a pair.
///
/// Returns, per row, the assigned column (or `None`). Each column is used
/// at most once. The assignment minimizes total cost over all maximum
/// matchings of the finite-cost bipartite graph.
pub fn assign_min_cost(cost: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n_rows = cost.len();
    if n_rows == 0 {
        return Vec::new();
    }
    let n_cols = cost[0].len();
    assert!(cost.iter().all(|r| r.len() == n_cols), "ragged cost matrix");
    if n_cols == 0 {
        return vec![None; n_rows];
    }

    // Square the problem: pad with dummy rows/columns of large-but-finite
    // cost so the JV-style potentials stay finite. Forbidden (infinite)
    // pairs get the same large cost and are filtered out afterwards.
    let n = n_rows.max(n_cols);
    let finite_max = cost
        .iter()
        .flatten()
        .copied()
        .filter(|c| c.is_finite())
        .fold(0.0f64, f64::max);
    let big = 1e6 + 2.0 * finite_max.abs() * (n as f64 + 1.0);
    let at = |r: usize, c: usize| -> f64 {
        if r < n_rows && c < n_cols {
            let v = cost[r][c];
            if v.is_finite() {
                v
            } else {
                big
            }
        } else {
            big
        }
    };

    // Shortest augmenting path with potentials (1-indexed internals).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row assigned to col
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = at(i0 - 1, j - 1) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut out = vec![None; n_rows];
    for j in 1..=n {
        let r = p[j];
        if r >= 1 && r <= n_rows && j <= n_cols && cost[r - 1][j - 1].is_finite() {
            out[r - 1] = Some(j - 1);
        }
    }
    out
}

/// Total cost of an assignment (for tests / reporting).
pub fn assignment_cost(cost: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(r, c)| c.map(|c| cost[r][c]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_a_classic_3x3() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = assign_min_cost(&cost);
        // Optimal: r0->c1 (1), r1->c0 (2), r2->c2 (2) = 5.
        assert_eq!(a, vec![Some(1), Some(0), Some(2)]);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
    }

    #[test]
    fn identity_is_optimal_on_diagonal_matrices() {
        let n = 6;
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|r| (0..n).map(|c| if r == c { 0.0 } else { 10.0 }).collect())
            .collect();
        let a = assign_min_cost(&cost);
        for (r, c) in a.iter().enumerate() {
            assert_eq!(*c, Some(r));
        }
    }

    #[test]
    fn rectangular_more_rows_than_columns() {
        // 3 detections, 1 annotation: exactly one gets it, the cheapest.
        let cost = vec![vec![5.0], vec![1.0], vec![3.0]];
        let a = assign_min_cost(&cost);
        assert_eq!(a, vec![None, Some(0), None]);
    }

    #[test]
    fn rectangular_more_columns_than_rows() {
        let cost = vec![vec![9.0, 2.0, 7.0]];
        let a = assign_min_cost(&cost);
        assert_eq!(a, vec![Some(1)]);
    }

    #[test]
    fn infinite_costs_forbid_pairs() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, 1.0], vec![inf, inf]];
        let a = assign_min_cost(&cost);
        assert_eq!(a[0], Some(1));
        assert_eq!(a[1], None, "row 1 has no finite column");
    }

    #[test]
    fn beats_greedy_on_an_adversarial_case() {
        // Greedy (row-wise min) picks r0->c0 (1), forcing r1->c1 (100):
        // total 101. Optimal is r0->c1 (2) + r1->c0 (3) = 5.
        let cost = vec![vec![1.0, 2.0], vec![3.0, 100.0]];
        let a = assign_min_cost(&cost);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
    }

    #[test]
    fn empty_inputs() {
        assert!(assign_min_cost(&[]).is_empty());
        let no_cols: Vec<Vec<f64>> = vec![vec![], vec![]];
        assert_eq!(assign_min_cost(&no_cols), vec![None, None]);
    }

    #[test]
    fn matches_bruteforce_on_random_matrices() {
        // Exhaustive check over all permutations for n = 4.
        let mut seed = 123456789u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) * 10.0
        };
        for _ in 0..25 {
            let cost: Vec<Vec<f64>> = (0..4).map(|_| (0..4).map(|_| rnd()).collect()).collect();
            let a = assign_min_cost(&cost);
            let got = assignment_cost(&cost, &a);
            // Brute force.
            let mut best = f64::INFINITY;
            let perm = [0usize, 1, 2, 3];
            let mut perms = vec![perm];
            // Generate all permutations of 4 elements.
            fn heap(k: usize, arr: &mut [usize; 4], out: &mut Vec<[usize; 4]>) {
                if k == 1 {
                    out.push(*arr);
                    return;
                }
                for i in 0..k {
                    heap(k - 1, arr, out);
                    if k.is_multiple_of(2) {
                        arr.swap(i, k - 1);
                    } else {
                        arr.swap(0, k - 1);
                    }
                }
            }
            let mut arr = perm;
            perms.clear();
            heap(4, &mut arr, &mut perms);
            for p in &perms {
                let c: f64 = (0..4).map(|r| cost[r][p[r]]).sum();
                best = best.min(c);
            }
            assert!((got - best).abs() < 1e-9, "hungarian {got} vs brute force {best}");
        }
    }
}
