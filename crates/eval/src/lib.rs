//! # fd-eval — detection-accuracy evaluation (paper §VI-B)
//!
//! The paper's accuracy methodology, reimplemented end to end:
//!
//! * grouped detections are assigned to ground-truth annotations with the
//!   **Hungarian algorithm** ([`hungarian`]), using the eye-distance
//!   metric `S_eyes` (Eq. 6) as the cost function;
//! * matched assignments count as true positives, unmatched detections as
//!   false positives; sweeping a threshold over the detection score
//!   produces the TPR/FP curves of Fig. 9 ([`roc`]);
//! * the test corpus ([`scface`]) is a synthetic stand-in for the SCFace
//!   visible-light mug shots plus 3 000 background images: frontal
//!   procedural faces, one per image, with exact eye annotations.

pub mod hungarian;
pub mod roc;
pub mod scface;

pub use hungarian::assign_min_cost;
pub use roc::{
    evaluate_backend, evaluate_frames, match_frame, roc_curve, BackendEval, FrameEval, RocPoint,
};
pub use scface::{MugshotDataset, MugshotImage};
