//! Synthetic mug-shot accuracy corpus.
//!
//! Stands in for the paper's test set: "the subset of visible light mug
//! shot frontal images of the SCFace database, which has been increased
//! with 3000 high-resolution background images" (§VI-B). Each positive
//! image contains exactly one frontal procedural face at a mug-shot-like
//! size and position, with exact eye annotations; negatives are pure
//! background textures used to count false positives.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fd_imgproc::synth::{render_random_background, FaceParams};
use fd_imgproc::{GrayImage, PointF, Rect};

/// Ground truth for one annotated face.
#[derive(Debug, Clone)]
pub struct Annotation {
    pub rect: Rect,
    pub eyes: (PointF, PointF),
    /// Annotated inter-eye distance (the `d1`/`d2` of Eq. 6).
    pub eye_distance: f64,
}

/// One corpus image.
#[derive(Debug, Clone)]
pub struct MugshotImage {
    pub image: GrayImage,
    /// `Some` for mug shots, `None` for background images.
    pub truth: Option<Annotation>,
}

/// The generated corpus.
pub struct MugshotDataset {
    pub images: Vec<MugshotImage>,
    pub n_faces: usize,
    pub n_backgrounds: usize,
}

impl MugshotDataset {
    /// Generate `n_faces` mug shots and `n_backgrounds` background images
    /// of side `image_side` pixels.
    pub fn generate(n_faces: usize, n_backgrounds: usize, image_side: usize, seed: u64) -> Self {
        assert!(image_side >= 48);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::with_capacity(n_faces + n_backgrounds);

        for _ in 0..n_faces {
            let mut img = render_random_background(&mut rng, image_side, image_side);
            // Mug shot: face fills 45-75% of the image, near-centered.
            let size = rng.random_range(0.45..0.75) * image_side as f64;
            let margin_x = image_side as f64 - size;
            let margin_y = image_side as f64 - size;
            let x = margin_x * rng.random_range(0.3..0.7);
            let y = margin_y * rng.random_range(0.2..0.6);
            let params = FaceParams::sample(&mut rng);
            let patch = params.render(size.round() as usize);
            img.blit(&patch, x.round() as i32, y.round() as i32);
            let eyes = params.eye_centers(size.round(), x.round(), y.round());
            let eye_distance = eyes.0.distance(&eyes.1);
            images.push(MugshotImage {
                image: img,
                truth: Some(Annotation {
                    rect: Rect::new(
                        x.round() as i32,
                        y.round() as i32,
                        size.round() as u32,
                        size.round() as u32,
                    ),
                    eyes,
                    eye_distance,
                }),
            });
        }
        for _ in 0..n_backgrounds {
            images.push(MugshotImage {
                image: render_random_background(&mut rng, image_side, image_side),
                truth: None,
            });
        }

        Self { images, n_faces, n_backgrounds }
    }

    /// Total annotated faces (the TPR denominator).
    pub fn total_faces(&self) -> usize {
        self.n_faces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_counts() {
        let ds = MugshotDataset::generate(5, 7, 96, 42);
        assert_eq!(ds.images.len(), 12);
        assert_eq!(ds.images.iter().filter(|i| i.truth.is_some()).count(), 5);
        assert_eq!(ds.total_faces(), 5);
    }

    #[test]
    fn truth_is_consistent_with_rendered_face() {
        let ds = MugshotDataset::generate(10, 0, 128, 7);
        for img in &ds.images {
            let t = img.truth.as_ref().unwrap();
            // Eyes inside the face rect.
            for eye in [t.eyes.0, t.eyes.1] {
                assert!(eye.x > t.rect.x as f64 && eye.x < t.rect.right() as f64);
                assert!(eye.y > t.rect.y as f64 && eye.y < t.rect.bottom() as f64);
            }
            // Inter-eye distance ~ 0.4 * face size (the synth convention),
            // modulated by the sampled feature scale (0.84..1.19).
            let expect = 0.4 * t.rect.w as f64;
            assert!(
                (t.eye_distance - expect).abs() < 0.20 * expect,
                "eye distance {} vs expected ~{expect}",
                t.eye_distance
            );
            // Face rect fits inside the image.
            assert!(t.rect.x >= 0 && t.rect.bottom() <= 128);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = MugshotDataset::generate(3, 3, 96, 5);
        let b = MugshotDataset::generate(3, 3, 96, 5);
        for (x, y) in a.images.iter().zip(&b.images) {
            assert_eq!(x.image.as_slice(), y.image.as_slice());
        }
    }

    #[test]
    fn backgrounds_contain_no_truth() {
        let ds = MugshotDataset::generate(0, 4, 96, 9);
        assert!(ds.images.iter().all(|i| i.truth.is_none()));
    }
}
