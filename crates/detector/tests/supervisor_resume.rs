//! Checkpoint/resume integration tests for the stream supervisor.
//!
//! The contract under test: killing a supervised session at an arbitrary
//! frame, serializing its [`SessionCheckpoint`] to text, and resuming in
//! a fresh supervisor (with a fresh decoder sought to the checkpoint's
//! frame cursor) yields [`StreamStats`] — and a final checkpoint —
//! **bit-identical** to the uninterrupted run. Holds under zero-rate and
//! nonzero-rate fault plans (device and decode), at any kill frame, and
//! at any host thread count.

use fd_detector::{
    DetectorConfig, RecoveryPolicy, SessionCheckpoint, SessionId, StreamSupervisor,
    SupervisorConfig,
};
use fd_gpu::FaultPlan;
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_video::{DecodeFaultPlan, HwDecoder, Trailer, TrailerSpec};
use proptest::prelude::*;

const N_FRAMES: usize = 14;

fn cascade() -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut c = Cascade::new("t", 24);
    for _ in 0..3 {
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
    }
    c
}

fn decoder(seed: u64, faulty: bool) -> HwDecoder {
    let mut d = HwDecoder::new(Trailer::generate(TrailerSpec {
        width: 160,
        height: 120,
        n_frames: N_FRAMES,
        seed: 21,
        face_size: (26.0, 60.0),
        ..TrailerSpec::default()
    }));
    if faulty {
        d.set_fault_plan(Some(
            DecodeFaultPlan::seeded(seed).with_corrupt_frames(0.1).with_dropped_frames(0.05),
        ));
    }
    d
}

fn device_plan(seed: u64, faulty: bool) -> FaultPlan {
    let plan = FaultPlan::seeded(seed);
    if faulty {
        // Transients exercise the retry path (and its fault-cursor
        // advance); timeouts exercise skip accounting and the breaker.
        plan.with_transient_launch_failures(0.004).with_launch_timeouts(0.002)
    } else {
        plan // zero-rate: attached but inert
    }
}

fn det_config(seed: u64, faulty: bool, host_threads: Option<usize>) -> DetectorConfig {
    DetectorConfig {
        min_neighbors: 1,
        fault_plan: Some(device_plan(seed, faulty)),
        host_threads,
        ..DetectorConfig::default()
    }
}

fn sup_config() -> SupervisorConfig {
    SupervisorConfig { breaker_threshold: 2, cooldown_ticks: 3, ..SupervisorConfig::default() }
}

fn admit(sup: &mut StreamSupervisor, seed: u64, faulty: bool) -> SessionId {
    sup.admit(&cascade(), det_config(seed, faulty, None), 24.0, RecoveryPolicy::default(), 160, 120)
        .expect("admission")
}

/// Feed frames `[from, to)` one at a time, draining after each so every
/// fed frame is processed (quarantines spin ticks, never drop frames).
fn feed(sup: &mut StreamSupervisor, id: SessionId, dec: &mut HwDecoder, to: usize) {
    while dec.stream_position() < to {
        let frame = dec.next().expect("frame in range");
        assert!(sup.enqueue_frame(id, frame).unwrap());
        sup.drain();
    }
}

/// Checkpoint with the supervisor-assigned session id masked out, so
/// uninterrupted and resumed runs (which allocate different ids) compare
/// on state alone.
fn masked(mut c: SessionCheckpoint) -> SessionCheckpoint {
    c.session = SessionId(0);
    c
}

/// Run to `N_FRAMES` uninterrupted; checkpoint at the end.
fn uninterrupted(seed: u64, faulty: bool) -> SessionCheckpoint {
    let mut sup = StreamSupervisor::new(sup_config());
    let id = admit(&mut sup, seed, faulty);
    let mut dec = decoder(seed, faulty);
    feed(&mut sup, id, &mut dec, N_FRAMES);
    masked(sup.checkpoint(id).unwrap())
}

/// Kill at `kill`, round-trip the checkpoint through text, resume in a
/// fresh supervisor with a fresh decoder sought to the cursor, finish.
fn killed_and_resumed(seed: u64, faulty: bool, kill: usize) -> SessionCheckpoint {
    let mut sup = StreamSupervisor::new(sup_config());
    let id = admit(&mut sup, seed, faulty);
    let mut dec = decoder(seed, faulty);
    feed(&mut sup, id, &mut dec, kill);
    let ckpt = sup.checkpoint(id).unwrap();
    let text = ckpt.to_text();
    drop(sup); // the kill: all in-memory state is gone

    let restored = SessionCheckpoint::from_text(&text).expect("checkpoint parses");
    assert_eq!(restored, ckpt, "text round-trip is bit-exact");
    let mut sup2 = StreamSupervisor::new(sup_config());
    let id2 = sup2
        .resume(&restored, &cascade(), det_config(seed, faulty, None), 24.0)
        .expect("resume admission");
    let mut dec2 = decoder(seed, faulty);
    dec2.seek(restored.next_frame);
    assert_eq!(dec2.stream_position(), kill, "every fed frame was accounted");
    feed(&mut sup2, id2, &mut dec2, N_FRAMES);
    masked(sup2.checkpoint(id2).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn kill_and_resume_matches_uninterrupted_run(
        kill in 1usize..N_FRAMES,
        seed in 0u64..1 << 20,
        faulty in any::<bool>(),
    ) {
        let full = uninterrupted(seed, faulty);
        let resumed = killed_and_resumed(seed, faulty, kill);
        prop_assert_eq!(&resumed, &full);
        prop_assert_eq!(resumed.snapshot.stats.frames, N_FRAMES);
        prop_assert!(resumed.snapshot.stats.all_frames_accounted());
    }
}

#[test]
fn resume_preserves_the_fault_sequence_position() {
    // With faults on, the draw sequence must continue where it stopped:
    // a resumed run that restarted the sequence from zero would replay
    // the early faults and diverge. Killing right after a fault-heavy
    // prefix is the sharpest probe of the cursor.
    let seed = 7;
    let full = uninterrupted(seed, true);
    for kill in [1, N_FRAMES / 2, N_FRAMES - 1] {
        let resumed = killed_and_resumed(seed, true, kill);
        assert_eq!(resumed, full, "kill at {kill}");
    }
    assert!(
        full.fault_cursor.launch_attempts > 0,
        "the faulty run must actually draw launch verdicts"
    );
}

#[test]
fn host_thread_count_does_not_affect_supervised_results() {
    // The simulator's functional phase may fan out across host threads;
    // supervised results must be bit-identical at any width.
    let run = |threads: Option<usize>| {
        let mut sup = StreamSupervisor::new(sup_config());
        let id = sup
            .admit(
                &cascade(),
                det_config(3, true, threads),
                24.0,
                RecoveryPolicy::default(),
                160,
                120,
            )
            .unwrap();
        let mut dec = decoder(3, true);
        feed(&mut sup, id, &mut dec, N_FRAMES);
        masked(sup.checkpoint(id).unwrap())
    };
    let sequential = run(Some(1));
    let parallel = run(Some(4));
    assert_eq!(sequential, parallel);
}
