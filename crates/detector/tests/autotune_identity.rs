//! Autotune identity integration tests: launch-shape autotuning is a
//! *timing and residency* optimisation, never a semantic one. Over
//! randomly seeded video frames, an autotuned pipeline must report
//! exactly the detections of the fixed-shape baseline — in both fusion
//! modes — and within each autotune mode every host execution engine
//! (`Sync`/`Async`) and thread count must produce byte-identical
//! results. Autotuning changes *which blocks the device runs*, so its
//! simulated time may differ from the baseline, but nothing host-side
//! may leak into either mode's output.
//!
//! Knobs are driven through [`DetectorConfig`] fields only: the
//! `FD_SIM_*` environment variables are cached per process (`OnceLock`)
//! and cannot be varied inside one test binary.

use fd_detector::{Detection, DetectorConfig, FaceDetector};
use fd_gpu::HostExec;
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_video::{HwDecoder, Trailer, TrailerSpec};
use proptest::prelude::*;

fn cascade() -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut c = Cascade::new("t", 24);
    for _ in 0..3 {
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
    }
    c
}

fn trailer(seed: u64, n_frames: usize) -> Trailer {
    Trailer::generate(TrailerSpec {
        width: 160,
        height: 120,
        n_frames,
        seed,
        face_size: (26.0, 60.0),
        ..TrailerSpec::default()
    })
}

fn config(autotune: bool, fusion: bool, threads: usize, exec: HostExec) -> DetectorConfig {
    DetectorConfig {
        min_neighbors: 1,
        autotune: Some(autotune),
        fusion: Some(fusion),
        host_threads: Some(threads),
        host_exec: Some(exec),
        ..DetectorConfig::default()
    }
}

/// Raw detections and per-frame latency bits over a seeded trailer.
fn detect_fingerprint(
    seed: u64,
    autotune: bool,
    fusion: bool,
    threads: usize,
    exec: HostExec,
) -> (Vec<Detection>, Vec<u64>) {
    let frames: Vec<_> = HwDecoder::new(trailer(seed, 3)).collect();
    let mut det = FaceDetector::try_new(&cascade(), config(autotune, fusion, threads, exec))
        .expect("detector");
    let mut raw = Vec::new();
    let mut latency_bits = Vec::new();
    for f in &frames {
        let r = det.detect(&f.luma).expect("detect");
        raw.extend(r.raw);
        latency_bits.push(r.detect_ms.to_bits());
    }
    (raw, latency_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole guarantee: over arbitrary frame content, autotuning
    /// never changes a single detection — with fusion off or on — and
    /// within each autotune mode the detections *and* latency bits are
    /// invariant across host engines and thread counts.
    #[test]
    fn autotuned_detections_match_fixed_shapes_across_engines(seed in any::<u64>()) {
        for fusion in [false, true] {
            let fixed = detect_fingerprint(seed, false, fusion, 1, HostExec::Sync);
            let tuned = detect_fingerprint(seed, true, fusion, 1, HostExec::Sync);
            prop_assert_eq!(&fixed.0, &tuned.0, "autotune changed detections (fusion={})", fusion);
            for exec in [HostExec::Sync, HostExec::Async] {
                for threads in [1usize, 4] {
                    let f = detect_fingerprint(seed, false, fusion, threads, exec);
                    prop_assert_eq!(&f.0, &fixed.0, "fixed/{:?}/{}", exec, threads);
                    prop_assert_eq!(&f.1, &fixed.1, "fixed/{:?}/{}", exec, threads);
                    let t = detect_fingerprint(seed, true, fusion, threads, exec);
                    prop_assert_eq!(&t.0, &tuned.0, "tuned/{:?}/{}", exec, threads);
                    prop_assert_eq!(&t.1, &tuned.1, "tuned/{:?}/{}", exec, threads);
                }
            }
        }
    }
}

/// Non-property smoke check that the config knob actually reaches the
/// pipeline and re-tiles at least one launch (a regression here would
/// make the proptest vacuous: both sides would run the same shapes).
#[test]
fn autotune_knob_reaches_the_pipeline_and_retiles_launches() {
    let frames: Vec<_> = HwDecoder::new(trailer(11, 1)).collect();
    let run = |autotune: bool| {
        let mut det =
            FaceDetector::try_new(&cascade(), config(autotune, false, 1, HostExec::Sync)).unwrap();
        assert_eq!(det.autotune(), autotune);
        let r = det.detect(&frames[0].luma).unwrap();
        // Fingerprint each launch's geometry: block count + residency.
        r.timeline
            .events
            .iter()
            .map(|e| (e.kernel_name, e.blocks, e.occupancy.resident_warps))
            .collect::<Vec<_>>()
    };
    let fixed = run(false);
    let tuned = run(true);
    assert_eq!(fixed.len(), tuned.len(), "same launch count either way");
    assert_ne!(fixed, tuned, "autotune must re-tile at least one launch");
}
