//! Fault-matrix integration tests: every injectable fault kind, driven
//! through the full streaming pipeline (decode -> upload -> per-level
//! kernel chains -> timing -> readback), must leave the stream alive
//! with every frame accounted as Ok/Degraded/Skipped — plus the
//! zero-fault bit-identity guarantee at any host thread count.
//!
//! Fault kind -> pipeline stage exercised:
//! * `DecodeFault::Dropped` / `Corrupted` — the decode stage
//! * `copy_corruption_rate` — host->device / device->host copies
//! * `transient_launch_rate` / `launch_timeout_rate` — every kernel
//!   launch in the eight-kernel per-level chain
//! * `stall_rate` — the timing phase (latency spikes, results intact)

use fd_detector::{DetectorConfig, FrameOutcome, StreamStats, VideoDetector};
use fd_gpu::FaultPlan;
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_video::{DecodeFaultPlan, HwDecoder, Trailer, TrailerSpec};
use proptest::prelude::*;

fn cascade() -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut c = Cascade::new("t", 24);
    for _ in 0..3 {
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
    }
    c
}

fn trailer(n_frames: usize) -> Trailer {
    Trailer::generate(TrailerSpec {
        width: 160,
        height: 120,
        n_frames,
        seed: 21,
        face_size: (26.0, 60.0),
        ..TrailerSpec::default()
    })
}

/// Run a faulted stream end-to-end; returns the stats for assertions.
fn run_stream(
    device_plan: Option<FaultPlan>,
    decode_plan: Option<DecodeFaultPlan>,
    n_frames: usize,
) -> StreamStats {
    let mut decoder = HwDecoder::new(trailer(n_frames));
    decoder.set_fault_plan(decode_plan);
    let mut vd = VideoDetector::new(
        &cascade(),
        DetectorConfig {
            min_neighbors: 1,
            fault_plan: device_plan,
            ..DetectorConfig::default()
        },
        24.0,
    )
    .expect("video detector");
    let reports = vd.run_stream(decoder);
    assert_eq!(reports.len(), n_frames, "one report per decoded frame");
    for r in &reports {
        match r.outcome {
            FrameOutcome::Skipped => {
                assert!(r.result.is_none() && r.skipped.is_some(), "frame {}", r.frame)
            }
            _ => assert!(r.result.is_some() && r.skipped.is_none(), "frame {}", r.frame),
        }
    }
    vd.stats().clone()
}

#[test]
fn launch_timeouts_skip_frames_but_the_stream_survives() {
    let s = run_stream(Some(FaultPlan::seeded(3).with_launch_timeouts(0.02)), None, 25);
    assert_eq!(s.frames, 25);
    assert!(s.all_frames_accounted());
    assert!(s.skipped_frames > 0, "2% timeouts over ~64 launches/frame must skip");
    assert!(s.ok_frames > 0, "some frames must still pass clean");
}

#[test]
fn transient_launch_failures_are_retried() {
    let s =
        run_stream(Some(FaultPlan::seeded(7).with_transient_launch_failures(0.005)), None, 25);
    assert_eq!(s.frames, 25);
    assert!(s.all_frames_accounted());
    assert!(s.retries > 0, "transient faults must trigger retries");
    assert!(s.total_backoff_ms > 0.0);
    assert!(s.degraded_frames > 0, "recovered frames are reported degraded");
}

#[test]
fn stream_stalls_stretch_latency_without_losing_frames() {
    let clean = run_stream(None, None, 15);
    let stalled =
        run_stream(Some(FaultPlan::seeded(9).with_stream_stalls(0.3, 2000.0)), None, 15);
    assert_eq!(stalled.frames, 15);
    assert!(stalled.all_frames_accounted());
    assert_eq!(stalled.skipped_frames, 0, "stalls never lose results");
    assert_eq!(stalled.total_detections, clean.total_detections, "results intact");
    assert!(
        stalled.total_detect_ms > clean.total_detect_ms + 1.0,
        "stalls must stretch device time: {} vs {}",
        stalled.total_detect_ms,
        clean.total_detect_ms
    );
}

#[test]
fn copy_corruption_degrades_nothing_fatal() {
    let s = run_stream(Some(FaultPlan::seeded(13).with_copy_corruption(0.05)), None, 25);
    assert_eq!(s.frames, 25);
    assert!(s.all_frames_accounted());
    assert_eq!(s.skipped_frames, 0, "poisoned copies do not abort frames");
}

#[test]
fn decode_faults_are_accounted_per_kind() {
    let dropped = run_stream(None, Some(DecodeFaultPlan::seeded(5).with_dropped_frames(0.2)), 25);
    assert!(dropped.all_frames_accounted());
    assert!(dropped.skipped_frames > 0, "dropped decodes skip frames");

    let corrupt = run_stream(None, Some(DecodeFaultPlan::seeded(5).with_corrupt_frames(0.2)), 25);
    assert!(corrupt.all_frames_accounted());
    assert_eq!(corrupt.skipped_frames, 0, "corrupt frames still run detection");
    assert!(corrupt.degraded_frames > 0, "corrupt frames are reported degraded");
}

#[test]
fn everything_at_once_still_completes() {
    let device = FaultPlan::seeded(17)
        .with_transient_launch_failures(0.003)
        .with_launch_timeouts(0.002)
        .with_stream_stalls(0.05, 1000.0)
        .with_copy_corruption(0.02);
    let decode = DecodeFaultPlan::seeded(17).with_corrupt_frames(0.05).with_dropped_frames(0.05);
    let s = run_stream(Some(device), Some(decode), 40);
    assert_eq!(s.frames, 40);
    assert!(s.all_frames_accounted());
}

/// The ISSUE's acceptance scenario: 200-frame trailer, 5% transient
/// launch failures, 2% corrupt frames — completes without panicking,
/// every frame accounted.
#[test]
fn acceptance_200_frame_stream_with_seeded_faults() {
    let device = FaultPlan::seeded(42).with_transient_launch_failures(0.05);
    let decode = DecodeFaultPlan::seeded(42).with_corrupt_frames(0.02);
    let s = run_stream(Some(device), Some(decode), 200);
    assert_eq!(s.frames, 200);
    assert!(
        s.all_frames_accounted(),
        "ok {} + degraded {} + skipped {} != 200",
        s.ok_frames,
        s.degraded_frames,
        s.skipped_frames
    );
    assert!(s.retries > 0, "5% transient rate must exercise the retry path");
    assert!(s.pipelined_fps() > 0.0);
}

/// One full detection pass; returns everything the bit-identity check
/// compares: raw detections, latency bits, timeline dump, profiler dump.
fn detection_fingerprint(
    fault_plan: Option<FaultPlan>,
    host_threads: Option<usize>,
) -> (Vec<fd_detector::Detection>, Vec<u64>, String, String) {
    let frames: Vec<_> = HwDecoder::new(trailer(3)).collect();
    let mut det = fd_detector::FaceDetector::try_new(
        &cascade(),
        DetectorConfig {
            min_neighbors: 1,
            fault_plan,
            host_threads,
            ..DetectorConfig::default()
        },
    )
    .expect("detector");
    let mut raw = Vec::new();
    let mut latency_bits = Vec::new();
    let mut timelines = String::new();
    for f in &frames {
        let r = det.detect(&f.luma).expect("fault-free detect");
        raw.extend(r.raw);
        latency_bits.push(r.detect_ms.to_bits());
        timelines.push_str(&format!("{:?}", r.timeline));
    }
    let profiler = format!("{:?}", det.profiler());
    (raw, latency_bits, timelines, profiler)
}

#[test]
fn inert_fault_plan_is_bit_identical_at_any_thread_count() {
    let baseline = detection_fingerprint(None, Some(1));
    for threads in [Some(1), Some(2), Some(5)] {
        let clean = detection_fingerprint(None, threads);
        let inert = detection_fingerprint(Some(FaultPlan::seeded(123)), threads);
        assert_eq!(clean.0, baseline.0, "raw detections vary with {threads:?} threads");
        assert_eq!(clean.1, baseline.1, "latency bits vary with {threads:?} threads");
        assert_eq!(inert.0, baseline.0, "inert plan changed detections");
        assert_eq!(inert.1, baseline.1, "inert plan changed latency bits");
        assert_eq!(inert.2, baseline.2, "inert plan changed the timeline");
        assert_eq!(inert.3, baseline.3, "inert plan changed profiler counters");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any inert plan seed, any thread count: results are bit-identical
    /// to the no-plan build.
    #[test]
    fn zero_fault_plans_never_perturb_detection(
        seed in any::<u64>(),
        threads in 1usize..6,
    ) {
        let clean = detection_fingerprint(None, Some(threads));
        let inert = detection_fingerprint(Some(FaultPlan::seeded(seed)), Some(threads));
        prop_assert_eq!(clean.0, inert.0);
        prop_assert_eq!(clean.1, inert.1);
        prop_assert_eq!(clean.2, inert.2);
        prop_assert_eq!(clean.3, inert.3);
    }
}
