//! Fusion identity integration tests: kernel fusion is a *launch-count
//! and traffic-ledger* optimisation, never a semantic one. Over randomly
//! seeded video frames, a fused pipeline must report exactly the
//! detections of the unfused baseline, and within each fusion mode every
//! host execution engine (`Sync`/`Async`) and thread count must produce
//! byte-identical results and `StreamStats` — fusion changes *what the
//! device does*, so its simulated time may differ between modes, but
//! nothing host-side is allowed to leak into either mode's output.
//!
//! Knobs are driven through [`DetectorConfig`] fields only: the
//! `FD_SIM_*` environment variables are cached per process (`OnceLock`)
//! and cannot be varied inside one test binary.

use fd_detector::{Detection, DetectorConfig, FaceDetector, VideoDetector};
use fd_gpu::HostExec;
use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};
use fd_video::{HwDecoder, Trailer, TrailerSpec};
use proptest::prelude::*;

fn cascade() -> Cascade {
    let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
    let mut c = Cascade::new("t", 24);
    for _ in 0..3 {
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
    }
    c
}

fn trailer(seed: u64, n_frames: usize) -> Trailer {
    Trailer::generate(TrailerSpec {
        width: 160,
        height: 120,
        n_frames,
        seed,
        face_size: (26.0, 60.0),
        ..TrailerSpec::default()
    })
}

fn config(fusion: bool, threads: usize, exec: HostExec) -> DetectorConfig {
    DetectorConfig {
        min_neighbors: 1,
        fusion: Some(fusion),
        host_threads: Some(threads),
        host_exec: Some(exec),
        ..DetectorConfig::default()
    }
}

/// Raw detections and per-frame latency bits over a seeded trailer.
fn detect_fingerprint(
    seed: u64,
    fusion: bool,
    threads: usize,
    exec: HostExec,
) -> (Vec<Detection>, Vec<u64>) {
    let frames: Vec<_> = HwDecoder::new(trailer(seed, 3)).collect();
    let mut det =
        FaceDetector::try_new(&cascade(), config(fusion, threads, exec)).expect("detector");
    let mut raw = Vec::new();
    let mut latency_bits = Vec::new();
    for f in &frames {
        let r = det.detect(&f.luma).expect("detect");
        raw.extend(r.raw);
        latency_bits.push(r.detect_ms.to_bits());
    }
    (raw, latency_bits)
}

/// Full-stream `StreamStats` fingerprint (Debug dump covers every field,
/// including the f64 timing totals, to full precision).
fn stream_fingerprint(seed: u64, fusion: bool, threads: usize, exec: HostExec) -> String {
    let mut vd =
        VideoDetector::new(&cascade(), config(fusion, threads, exec), 24.0).expect("detector");
    let reports = vd.run_stream(HwDecoder::new(trailer(seed, 5)));
    assert_eq!(reports.len(), 5);
    format!("{:?}", vd.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The tentpole guarantee: over arbitrary frame content, fusion
    /// never changes a single detection, and within each mode the
    /// detections *and* latency bits are invariant across host engines
    /// and thread counts.
    #[test]
    fn fused_detections_match_unfused_across_engines(seed in any::<u64>()) {
        let unfused = detect_fingerprint(seed, false, 1, HostExec::Sync);
        let fused = detect_fingerprint(seed, true, 1, HostExec::Sync);
        prop_assert_eq!(&unfused.0, &fused.0, "fusion changed detections");
        for exec in [HostExec::Sync, HostExec::Async] {
            for threads in [1usize, 4] {
                let u = detect_fingerprint(seed, false, threads, exec);
                prop_assert_eq!(&u.0, &unfused.0, "unfused/{:?}/{}", exec, threads);
                prop_assert_eq!(&u.1, &unfused.1, "unfused/{:?}/{}", exec, threads);
                let f = detect_fingerprint(seed, true, threads, exec);
                prop_assert_eq!(&f.0, &fused.0, "fused/{:?}/{}", exec, threads);
                prop_assert_eq!(&f.1, &fused.1, "fused/{:?}/{}", exec, threads);
            }
        }
    }

    /// Whole streams: `StreamStats` (frame accounting and all timing
    /// totals) are byte-identical across engines and thread counts in
    /// both fusion modes.
    #[test]
    fn stream_stats_are_engine_invariant_in_both_fusion_modes(seed in any::<u64>()) {
        for fusion in [false, true] {
            let baseline = stream_fingerprint(seed, fusion, 1, HostExec::Sync);
            for exec in [HostExec::Sync, HostExec::Async] {
                for threads in [1usize, 4] {
                    let s = stream_fingerprint(seed, fusion, threads, exec);
                    prop_assert_eq!(&s, &baseline, "fusion={} {:?}/{}", fusion, exec, threads);
                }
            }
        }
    }
}

/// Non-property smoke check that the config knob actually reaches the
/// pipeline (a regression here would make the proptests vacuous: both
/// sides would silently run unfused).
#[test]
fn fusion_knob_reaches_the_pipeline_and_cuts_launches() {
    let frames: Vec<_> = HwDecoder::new(trailer(11, 1)).collect();
    let run = |fusion: bool| {
        let mut det =
            FaceDetector::try_new(&cascade(), config(fusion, 1, HostExec::Sync)).unwrap();
        assert_eq!(det.fusion(), fusion);
        let r = det.detect(&frames[0].luma).unwrap();
        (r.timeline.events.len(), r.detect_ms)
    };
    let (launches_unfused, ms_unfused) = run(false);
    let (launches_fused, ms_fused) = run(true);
    assert_eq!(launches_unfused % 8, 0, "8 launches per level unfused");
    assert_eq!(launches_fused % 4, 0, "4 launches per level fused");
    assert!(ms_fused < ms_unfused, "fusion must be faster: {ms_fused} vs {ms_unfused}");
}
