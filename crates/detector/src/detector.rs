//! The public face-detector API.
//!
//! Wraps [`crate::FramePipeline`] with detection extraction, grouping and
//! the per-frame statistics the paper's evaluation consumes (latency,
//! per-stage rejection histograms, profiler counters).

use fd_gpu::{DeviceSpec, ExecMode, FaultPlan, Gpu, HostExec, Timeline};
use fd_haar::Cascade;
use fd_imgproc::{GrayImage, Rect};

use crate::error::DetectorError;
use crate::group::{group_detections, Detection, GroupedDetection};
use crate::pipeline::{FramePipeline, ScaleOutput};

/// Detector configuration.
#[derive(Debug, Clone)]
pub struct DetectorConfig {
    /// Device to simulate.
    pub device: DeviceSpec,
    /// Serial vs concurrent kernel execution (the paper's comparison).
    pub exec_mode: ExecMode,
    /// Pyramid ratio between consecutive levels.
    pub scale_factor: f64,
    /// `S_eyes` overlap threshold for grouping (paper: 0.5).
    pub overlap_threshold: f64,
    /// Minimum raw windows per reported detection.
    pub min_neighbors: usize,
    /// Collect per-stage/per-scale rejection histograms (Fig. 7).
    pub collect_rejection_stats: bool,
    /// Host worker threads for the simulator's functional phase. `None`
    /// defers to `FD_SIM_THREADS` or the machine's core count; `Some(1)`
    /// forces sequential execution. Results are identical either way.
    pub host_threads: Option<usize>,
    /// Host execution engine for the simulator's functional phase.
    /// `None` defers to `FD_SIM_HOST_EXEC`, then to the asynchronous
    /// deferred-drain engine. Results are bit-identical either way; only
    /// host wall-clock differs.
    pub host_exec: Option<HostExec>,
    /// Deterministic device fault injection (robustness experiments).
    /// `None` — and any inert plan — leaves behaviour bit-identical to a
    /// fault-free device.
    pub fault_plan: Option<FaultPlan>,
    /// Fuse the smoothing/integral pipeline stages into combined
    /// launches (see [`fd_gpu::fuse`]). `None` defers to `FD_SIM_FUSION`,
    /// then to off (the unfused paper baseline). Detections are
    /// bit-identical either way; fused frames pay fewer launch overheads
    /// and keep chain-internal intermediates off the global traffic
    /// ledger.
    pub fusion: Option<bool>,
    /// Autotune launch shapes through the scheduler's occupancy model
    /// (see [`fd_gpu::tune`]). `None` defers to `FD_SIM_AUTOTUNE`, then
    /// to off (the fixed-shape baseline). Detections are byte-identical
    /// either way; only block shapes and timing change.
    pub autotune: Option<bool>,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            device: DeviceSpec::gtx470(),
            exec_mode: ExecMode::Concurrent,
            scale_factor: 1.25,
            overlap_threshold: 0.5,
            min_neighbors: 2,
            collect_rejection_stats: false,
            host_threads: None,
            host_exec: None,
            fault_plan: None,
            fusion: None,
            autotune: None,
        }
    }
}

/// Histogram of the deepest stage reached, per pyramid level (the data
/// behind the paper's Fig. 7).
#[derive(Debug, Clone)]
pub struct RejectionHistogram {
    /// `counts[level][depth]` = windows whose evaluation ended at `depth`
    /// (0 = rejected by the first stage).
    pub counts: Vec<Vec<u64>>,
    /// Valid windows per level.
    pub windows_per_level: Vec<u64>,
}

impl RejectionHistogram {
    /// Fraction of windows rejected exactly at `stage` (1-based, i.e.
    /// stage 1 rejects windows with depth 0), aggregated over all levels.
    pub fn rejection_rate_at_stage(&self, stage: usize) -> f64 {
        assert!(stage >= 1);
        let total: u64 = self.windows_per_level.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rejected: u64 = self.counts.iter().map(|c| c.get(stage - 1).copied().unwrap_or(0)).sum();
        rejected as f64 / total as f64
    }

    /// Per-level rejection fraction at a 1-based stage.
    pub fn per_level_rate(&self, level: usize, stage: usize) -> f64 {
        let n = self.windows_per_level[level];
        if n == 0 {
            return 0.0;
        }
        self.counts[level].get(stage - 1).copied().unwrap_or(0) as f64 / n as f64
    }
}

/// Everything produced for one frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Grouped detections in frame coordinates.
    pub detections: Vec<GroupedDetection>,
    /// Raw per-window detections before grouping.
    pub raw: Vec<Detection>,
    /// Simulated detection latency (device span), milliseconds.
    pub detect_ms: f64,
    /// The frame's kernel timeline (Fig. 6 source).
    pub timeline: Timeline,
    /// Per-stage rejection histogram when enabled.
    pub rejection: Option<RejectionHistogram>,
}

/// GPU face detector bound to a cascade and configuration.
pub struct FaceDetector {
    pipeline: FramePipeline,
    config: DetectorConfig,
}

impl FaceDetector {
    /// Panicking form of [`Self::try_new`] for static configurations.
    pub fn new(cascade: &Cascade, config: DetectorConfig) -> Self {
        Self::try_new(cascade, config).unwrap()
    }

    /// Build a detector, validating the configuration and staging the
    /// cascade on the device. The cascade is semantically validated first
    /// ([`Cascade::validate`]) so a corrupt or hand-edited model is
    /// rejected with a typed error before any device state exists.
    pub fn try_new(cascade: &Cascade, config: DetectorConfig) -> Result<Self, DetectorError> {
        cascade.validate().map_err(|source| DetectorError::InvalidCascade { source })?;
        let mut gpu = Gpu::new(config.device.clone(), config.exec_mode);
        gpu.set_host_threads(config.host_threads);
        gpu.set_host_exec(config.host_exec);
        gpu.set_fault_plan(config.fault_plan.clone());
        let mut pipeline = FramePipeline::try_new(gpu, cascade, config.scale_factor)?;
        if let Some(fusion) = config.fusion {
            pipeline.set_fusion(fusion);
        }
        if let Some(autotune) = config.autotune {
            pipeline.set_autotune(autotune);
        }
        Ok(Self { pipeline, config })
    }

    /// Whether the smoothing/integral stages launch fused.
    pub fn fusion(&self) -> bool {
        self.pipeline.fusion()
    }

    /// Enable or disable kernel fusion (takes effect next frame).
    pub fn set_fusion(&mut self, fusion: bool) {
        self.config.fusion = Some(fusion);
        self.pipeline.set_fusion(fusion);
    }

    /// Whether launch shapes are autotuned.
    pub fn autotune(&self) -> bool {
        self.pipeline.autotune()
    }

    /// Enable or disable launch-shape autotuning (takes effect next frame).
    pub fn set_autotune(&mut self, autotune: bool) {
        self.config.autotune = Some(autotune);
        self.pipeline.set_autotune(autotune);
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The quantized cascade in use.
    pub fn cascade(&self) -> &Cascade {
        self.pipeline.cascade()
    }

    /// Switch execution mode (takes effect next frame).
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.config.exec_mode = mode;
        self.pipeline.gpu.set_mode(mode);
    }

    /// Accumulated profiler (all frames so far).
    pub fn profiler(&self) -> &fd_gpu::Profiler {
        self.pipeline.gpu.profiler()
    }

    /// Reset profiler statistics.
    pub fn reset_profiler(&mut self) {
        self.pipeline.gpu.reset_profiler();
    }

    /// Attach (or clear) a device fault plan mid-stream.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.config.fault_plan = plan.clone();
        self.pipeline.gpu.set_fault_plan(plan);
    }

    /// Device fault statistics since plan attachment.
    pub fn fault_stats(&self) -> fd_gpu::FaultStats {
        self.pipeline.gpu.fault_stats()
    }

    /// Position in the deterministic fault-draw sequence (checkpointing).
    pub fn fault_cursor(&self) -> fd_gpu::FaultCursor {
        self.pipeline.gpu.fault_cursor()
    }

    /// Fast-forward the fault-draw sequence to `cursor` (resume). A fresh
    /// detector with the same `FaultPlan` sought to a saved cursor replays
    /// the remaining fault sequence bit-identically.
    pub fn seek_fault_cursor(&mut self, cursor: fd_gpu::FaultCursor) {
        self.pipeline.gpu.seek_fault_cursor(cursor);
    }

    /// Quarantine hygiene: cancel pending device work and drain latched
    /// copy faults so a recovering session restarts clean. Returns the
    /// number of discarded queued launches. Deliberately leaves the fault
    /// cursor untouched — the draw sequence keeps its position.
    pub fn cool_down(&mut self) -> usize {
        self.pipeline.gpu.cool_down()
    }

    /// Device bytes this detector currently holds (buffer pool + staged
    /// constant memory).
    pub fn device_bytes(&self) -> usize {
        self.pipeline.gpu.device_bytes_in_use()
    }

    /// Device bytes a `width x height` stream will hold at steady state
    /// (projected buffer pool + staged cascade), without allocating.
    pub fn projected_device_bytes(
        &self,
        width: usize,
        height: usize,
    ) -> Result<usize, DetectorError> {
        Ok(self.pipeline.projected_pool_bytes(width, height)? + self.pipeline.const_bytes())
    }

    /// Geometry-independent constant-memory footprint (the staged
    /// cascade tables), the one-time part of
    /// [`Self::projected_device_bytes`].
    pub fn const_bytes(&self) -> usize {
        self.pipeline.const_bytes()
    }

    /// Build `n` detectors over `n` independent simulated devices — the
    /// per-device handles of a serving fleet. Every replica shares the
    /// configuration, but an attached fault plan is forked per replica
    /// via [`FaultPlan::for_replica`], so device faults strike the fleet
    /// independently instead of in lockstep (replica 0 keeps the plan
    /// verbatim, making a 1-replica fleet identical to a single
    /// detector).
    pub fn try_new_replicas(
        cascade: &Cascade,
        config: DetectorConfig,
        n: usize,
    ) -> Result<Vec<Self>, DetectorError> {
        if n == 0 {
            return Err(DetectorError::InvalidConfig {
                reason: "a fleet needs at least one device replica",
            });
        }
        (0..n)
            .map(|i| {
                let mut cfg = config.clone();
                cfg.fault_plan =
                    config.fault_plan.as_ref().map(|p| p.for_replica(i as u64));
                Self::try_new(cascade, cfg)
            })
            .collect()
    }

    /// The full pyramid plan for a frame (largest level first). A
    /// deadline controller truncates this and calls
    /// [`Self::detect_with_plan`] to shed the smallest scales.
    pub fn pyramid_plan(&self, frame: &GrayImage) -> Result<Vec<(usize, usize)>, DetectorError> {
        self.pipeline.plan_for(frame)
    }

    /// Detect faces in one luma frame.
    pub fn detect(&mut self, frame: &GrayImage) -> Result<FrameResult, DetectorError> {
        let plan = self.pipeline.plan_for(frame)?;
        self.detect_with_plan(frame, &plan)
    }

    /// [`Self::detect`] over a prefix of the pyramid plan.
    pub fn detect_with_plan(
        &mut self,
        frame: &GrayImage,
        plan: &[(usize, usize)],
    ) -> Result<FrameResult, DetectorError> {
        let (outputs, timeline) = self.pipeline.run_frame_with_plan(frame, plan)?;
        let raw = self.extract_raw(&outputs);
        let detections =
            group_detections(&raw, self.config.overlap_threshold, self.config.min_neighbors);
        let rejection = if self.config.collect_rejection_stats {
            Some(self.histogram(&outputs))
        } else {
            None
        };
        Ok(FrameResult {
            detections,
            raw,
            detect_ms: timeline.span_us() / 1000.0,
            timeline,
            rejection,
        })
    }

    /// Detect faces in a batch of same-geometry luma frames submitted as
    /// **one** device submission: per pyramid level, each kernel is
    /// launched once for the whole batch ([`fd_gpu::Gpu::launch_batched`])
    /// so the batch pays a single launch-overhead chain and its blocks
    /// co-schedule across SMs. This is the entry point `fd-serve`'s
    /// dynamic batcher drives; a batch of one is bit-identical to
    /// [`Self::detect`].
    ///
    /// Returns one [`FrameResult`] per input frame, in input order. All
    /// results share the submission's device timeline, and `detect_ms`
    /// is the *batch* latency (every request in the batch completes when
    /// the submission drains).
    pub fn detect_batch(
        &mut self,
        frames: &[&GrayImage],
    ) -> Result<Vec<FrameResult>, DetectorError> {
        let Some(first) = frames.first() else {
            return Err(DetectorError::InvalidConfig { reason: "empty frame batch" });
        };
        let plan = self.pipeline.plan_for(first)?;
        self.detect_batch_with_plan(frames, &plan)
    }

    /// [`Self::detect_batch`] with an explicit pyramid plan, which may be
    /// a prefix of the full plan ([`Self::pyramid_plan`]) to shed the
    /// finest scales of every frame in the batch — the batched analogue
    /// of [`Self::detect_with_plan`], used by `fd-serve` for degraded
    /// completions under deadline pressure. With the full plan this is
    /// bit-identical to [`Self::detect_batch`].
    pub fn detect_batch_with_plan(
        &mut self,
        frames: &[&GrayImage],
        plan: &[(usize, usize)],
    ) -> Result<Vec<FrameResult>, DetectorError> {
        if frames.is_empty() {
            return Err(DetectorError::InvalidConfig { reason: "empty frame batch" });
        }
        let (batch_outputs, timeline) = self.pipeline.run_batch_with_plan(frames, plan)?;
        Ok(batch_outputs
            .iter()
            .map(|outputs| {
                let raw = self.extract_raw(outputs);
                let detections = group_detections(
                    &raw,
                    self.config.overlap_threshold,
                    self.config.min_neighbors,
                );
                let rejection = if self.config.collect_rejection_stats {
                    Some(self.histogram(outputs))
                } else {
                    None
                };
                FrameResult {
                    detections,
                    raw,
                    detect_ms: timeline.span_us() / 1000.0,
                    timeline: timeline.clone(),
                    rejection,
                }
            })
            .collect())
    }

    fn extract_raw(&self, outputs: &[ScaleOutput]) -> Vec<Detection> {
        let window = self.pipeline.cascade().window as usize;
        let mut raw = Vec::new();
        for out in outputs {
            for oy in 0..out.height {
                for ox in 0..out.width {
                    if out.hits[oy * out.width + ox] != 0 {
                        let size = (window as f64 * out.scale).round() as u32;
                        raw.push(Detection {
                            rect: Rect::new(
                                (ox as f64 * out.scale).round() as i32,
                                (oy as f64 * out.scale).round() as i32,
                                size,
                                size,
                            ),
                            score: out.score[oy * out.width + ox],
                            scale: out.level,
                        });
                    }
                }
            }
        }
        raw
    }

    fn histogram(&self, outputs: &[ScaleOutput]) -> RejectionHistogram {
        let n_stages = self.pipeline.cascade().depth() as usize;
        let window = self.pipeline.cascade().window as usize;
        let mut counts = Vec::with_capacity(outputs.len());
        let mut windows = Vec::with_capacity(outputs.len());
        for out in outputs {
            let mut hist = vec![0u64; n_stages + 1];
            let mut total = 0u64;
            if out.width >= window && out.height >= window {
                for oy in 0..=out.height - window {
                    for ox in 0..=out.width - window {
                        let d = out.depth[oy * out.width + ox] as usize;
                        hist[d.min(n_stages)] += 1;
                        total += 1;
                    }
                }
            }
            counts.push(hist);
            windows.push(total);
        }
        RejectionHistogram { counts, windows_per_level: windows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};

    /// A cascade accepting strong left-dark/right-bright vertical edges.
    fn edge_cascade(stages: usize) -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("edge", 24);
        for _ in 0..stages {
            c.stages.push(Stage {
                stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
                threshold: 0.5,
            });
        }
        c
    }

    /// A frame with an edge pattern sized for level-0 windows.
    fn frame_with_pattern() -> GrayImage {
        GrayImage::from_fn(80, 60, |x, y| {
            if (20..30).contains(&x) && (14..34).contains(&y) {
                5.0
            } else if (30..40).contains(&x) && (14..34).contains(&y) {
                250.0
            } else {
                120.0
            }
        })
    }

    #[test]
    fn detects_and_groups_the_pattern() {
        let mut det = FaceDetector::new(
            &edge_cascade(2),
            DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() },
        );
        let r = det.detect(&frame_with_pattern()).unwrap();
        assert!(!r.raw.is_empty(), "pattern must fire raw windows");
        assert!(!r.detections.is_empty());
        // The top detection's window contains the contrast edge (x=30).
        let top = &r.detections[0];
        assert!(top.rect.x <= 30 && top.rect.right() >= 30, "{:?}", top.rect);
        assert!(r.detect_ms > 0.0);
    }

    #[test]
    fn flat_frames_produce_nothing() {
        let mut det = FaceDetector::new(&edge_cascade(2), DetectorConfig::default());
        let r = det.detect(&GrayImage::from_fn(64, 64, |_, _| 128.0)).unwrap();
        assert!(r.raw.is_empty());
        assert!(r.detections.is_empty());
    }

    #[test]
    fn rejection_histogram_accounts_every_window() {
        let mut det = FaceDetector::new(
            &edge_cascade(3),
            DetectorConfig { collect_rejection_stats: true, ..DetectorConfig::default() },
        );
        let r = det.detect(&frame_with_pattern()).unwrap();
        let hist = r.rejection.expect("enabled");
        for (level, counts) in hist.counts.iter().enumerate() {
            let sum: u64 = counts.iter().sum();
            assert_eq!(sum, hist.windows_per_level[level], "level {level}");
        }
        // Flat regions die at stage 1: the aggregate stage-1 rejection
        // rate must dominate.
        assert!(hist.rejection_rate_at_stage(1) > 0.8);
    }

    #[test]
    fn exec_mode_switch_changes_timing_not_results() {
        let frame = frame_with_pattern();
        let mut det = FaceDetector::new(
            &edge_cascade(2),
            DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() },
        );
        let conc = det.detect(&frame).unwrap();
        det.set_exec_mode(ExecMode::Serial);
        let serial = det.detect(&frame).unwrap();
        assert_eq!(conc.raw, serial.raw);
        assert!(serial.detect_ms >= conc.detect_ms * 0.999);
    }

    #[test]
    fn detect_batch_of_one_matches_detect_bitwise() {
        let frame = frame_with_pattern();
        let cfg = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        let mut det = FaceDetector::new(&edge_cascade(2), cfg.clone());
        let single = det.detect(&frame).unwrap();
        let mut det = FaceDetector::new(&edge_cascade(2), cfg);
        let batch = det.detect_batch(&[&frame]).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(single.raw, batch[0].raw);
        assert_eq!(single.detections.len(), batch[0].detections.len());
        assert_eq!(single.detect_ms.to_bits(), batch[0].detect_ms.to_bits());
    }

    #[test]
    fn detect_batch_matches_per_frame_detection() {
        let frames = [frame_with_pattern(), GrayImage::from_fn(80, 60, |_, _| 128.0)];
        let cfg = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        let mut det = FaceDetector::new(&edge_cascade(2), cfg.clone());
        let singles: Vec<_> = frames.iter().map(|f| det.detect(f).unwrap()).collect();
        let mut det = FaceDetector::new(&edge_cascade(2), cfg);
        let refs: Vec<&GrayImage> = frames.iter().collect();
        let batch = det.detect_batch(&refs).unwrap();
        assert_eq!(batch.len(), 2);
        for (s, b) in singles.iter().zip(&batch) {
            assert_eq!(s.raw, b.raw);
        }
        assert!(!batch[0].raw.is_empty());
        assert!(batch[1].raw.is_empty());
    }

    #[test]
    fn timeline_has_one_trace_row_per_launch() {
        let mut det = FaceDetector::new(&edge_cascade(1), DetectorConfig::default());
        let r = det.detect(&frame_with_pattern()).unwrap();
        // 8 kernels per level.
        assert_eq!(r.timeline.events.len() % 8, 0);
        assert!(r.timeline.events.iter().any(|e| e.kernel_name == "cascade_eval"));
    }
}
