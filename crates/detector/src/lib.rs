//! # fd-detector — the paper's parallel face-detection pipeline
//!
//! The primary contribution of Oro et al. (ICPP 2012), reimplemented on
//! the simulated GPU of `fd-gpu`:
//!
//! ```text
//! input -> H.264 decode (fd-video, overlapped)
//!       -> scaling (texture bilinear, one kernel per pyramid level)
//!       -> filtering (anti-alias)
//!       -> integral image (row scan -> transpose -> row scan -> transpose)
//!       -> cascade evaluation (shared-memory tiling, constant-memory
//!          features, warp-level early exit)
//!       -> display (deepest-stage thresholding, rectangle grouping)
//! ```
//!
//! Every pyramid level runs in its own CUDA stream; under
//! [`fd_gpu::ExecMode::Concurrent`] the small levels' kernels co-schedule
//! across SMs (the paper's headline optimization), while
//! [`fd_gpu::ExecMode::Serial`] reproduces the baseline.
//!
//! * [`kernels`] — the six device kernels, each metering the SIMT work it
//!   performs;
//! * [`pipeline`] — per-frame orchestration: buffer management, stream
//!   assignment, launches and readback;
//! * [`group`] — detection grouping with the paper's `S_eyes` metric
//!   (Eq. 6) and the iterative averaging procedure of §VI-B;
//! * [`detector`] — the public [`FaceDetector`] API;
//! * [`backend`] — the [`Detector`] trait and [`Backend`] request class
//!   the serving layer dispatches on, abstracting this engine alongside
//!   the compact CNN cascade of `fd-cnn`;
//! * [`cpu_ref`] — a pure-CPU reference detector the GPU pipeline is
//!   verified against, window for window.

pub mod backend;
pub mod cpu_ref;
pub mod detector;
pub mod error;
pub mod group;
pub mod kernels;
pub mod multi_gpu;
pub mod pipeline;
pub mod stream_detector;
pub mod supervisor;

pub use backend::{Backend, Detector};
pub use detector::{DetectorConfig, FaceDetector, FrameResult, RejectionHistogram};
pub use error::DetectorError;
pub use group::{group_detections, s_eyes, Detection, GroupedDetection};
pub use multi_gpu::{detect_multi_gpu, MultiGpuFrame};
pub use pipeline::{FramePipeline, ScaleOutput};
pub use stream_detector::{
    DegradeReason, FrameOutcome, FrameReport, RecoveryPolicy, RecoverySnapshot, SkipReason,
    StreamStats, VideoDetector,
};
pub use supervisor::{
    CheckpointError, CheckpointHealth, HealthState, SessionCheckpoint, SessionId,
    StreamSupervisor, SupervisorConfig, SupervisorError, SupervisorStats,
};
