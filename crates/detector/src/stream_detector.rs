//! Pipelined video detection: hardware decode overlapped with GPU
//! compute (the paper's deployment shape: "70 fps ... while performing
//! both tasks (i.e. video decoding and face detection) in the GPU").
//!
//! [`VideoDetector`] consumes a stream of decoded frames and tracks the
//! two-stage pipeline's steady-state timing: decode of frame `i + 1`
//! overlaps detection of frame `i` (the hardware decoder is
//! fixed-function logic, independent of the SMs), so the per-frame period
//! is `max(decode, detect)` after the pipeline fills.
//!
//! # Recovery and graceful degradation
//!
//! A production stream must survive the faults the simulator can inject
//! (fd-gpu's `FaultPlan`, fd-video's `DecodeFaultPlan`) without aborting:
//!
//! * **Bounded retry** — a *transient* launch failure is retried up to
//!   [`RecoveryPolicy::max_retries`] times with deterministic exponential
//!   backoff; every kernel fully overwrites its outputs, so a retried
//!   frame is unaffected by the aborted attempt.
//! * **Skip-and-report** — unrecoverable frames (launch timeouts, retry
//!   exhaustion, dropped decodes) are skipped; the stream keeps going and
//!   the frame is accounted as [`FrameOutcome::Skipped`] in
//!   [`StreamStats`].
//! * **Deadline shedding** — when a sliding window of frames misses the
//!   playback deadline, the controller sheds the smallest pyramid scales
//!   (the plan's tail — exactly the levels whose concurrent execution the
//!   paper shows are cheap, so shedding them trades recall for latency
//!   predictably) and restores them when headroom returns. Disabled by
//!   default (`max_shed_levels == 0`), so a fault-free run is
//!   bit-identical to the pre-recovery detector.

use std::collections::VecDeque;

use fd_haar::Cascade;
use fd_imgproc::GrayImage;
use fd_video::{DecodeFault, DecodedFrame};

use crate::detector::{DetectorConfig, FaceDetector, FrameResult};
use crate::error::DetectorError;

/// How a frame left the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameOutcome {
    /// Detection ran at full quality on a clean frame.
    Ok,
    /// Detection produced results, but under degraded conditions
    /// (corrupted input, retried launches, or shed pyramid scales).
    Degraded,
    /// No detection results for this frame; the stream continued.
    Skipped,
}

/// Why a frame was degraded (a frame can accumulate several reasons).
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeReason {
    /// The decoder flagged the input luma as corrupted.
    CorruptInput,
    /// One or more launch attempts failed transiently and were retried.
    RetriedLaunches { retries: u32 },
    /// The deadline controller ran a truncated pyramid plan.
    ShedScales { shed_levels: usize },
}

/// Why a frame was skipped.
#[derive(Debug, Clone, PartialEq)]
pub enum SkipReason {
    /// The decoder dropped the frame (no picture to detect on).
    Decode(DecodeFault),
    /// Detection failed unrecoverably (timeout, retry exhaustion, ...).
    Detect(DetectorError),
}

/// Per-frame account of what the recovery layer did.
#[derive(Debug, Clone)]
pub struct FrameReport {
    /// Stream frame index.
    pub frame: usize,
    pub outcome: FrameOutcome,
    pub degraded: Vec<DegradeReason>,
    pub skipped: Option<SkipReason>,
    /// Transient-launch retries spent on this frame.
    pub retries: u32,
    /// Deterministic backoff charged to this frame, milliseconds.
    pub backoff_ms: f64,
    /// Pyramid levels shed by the deadline controller for this frame.
    pub shed_levels: usize,
    /// Detection results (`None` when skipped).
    pub result: Option<FrameResult>,
}

/// Retry / backoff / shedding parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries allowed per frame for transient launch failures.
    pub max_retries: u32,
    /// Backoff before retry `k` (0-based) is `backoff_base_ms * 2^k` —
    /// deterministic, no jitter, so fault runs reproduce exactly.
    pub backoff_base_ms: f64,
    /// Most pyramid levels the deadline controller may shed (0 disables
    /// shedding entirely; at least one level always runs).
    pub max_shed_levels: usize,
    /// Sliding-window length, in frames, for deadline monitoring.
    pub deadline_window: usize,
    /// Shed one more level when at least this fraction of the window
    /// missed the playback deadline.
    pub shed_miss_fraction: f64,
    /// Restore one level when the window's mean detect time falls below
    /// this fraction of the deadline.
    pub restore_headroom_fraction: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_ms: 2.0,
            max_shed_levels: 0,
            deadline_window: 12,
            shed_miss_fraction: 0.5,
            restore_headroom_fraction: 0.6,
        }
    }
}

impl RecoveryPolicy {
    /// Deterministic backoff before retry `k` (0-based):
    /// `backoff_base_ms * 2^k`. Shared by the streaming retry loop and
    /// `fd-serve`'s batch recovery so both charge identical virtual time.
    pub fn backoff_ms(&self, retry: u32) -> f64 {
        self.backoff_base_ms * f64::powi(2.0, retry as i32)
    }
}

/// Accumulated streaming statistics.
///
/// `PartialEq` compares the `f64` accumulators exactly (not within a
/// tolerance): the determinism contract is *bit-identity*, and the
/// checkpoint/resume tests rely on it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamStats {
    pub frames: usize,
    pub total_decode_ms: f64,
    pub total_detect_ms: f64,
    /// Sum of per-frame pipeline periods `max(decode, detect)`.
    pub total_period_ms: f64,
    pub max_detect_ms: f64,
    pub total_detections: usize,
    /// Frames that completed at full quality.
    pub ok_frames: usize,
    /// Frames that completed under degraded conditions.
    pub degraded_frames: usize,
    /// Frames skipped (stream continued without results).
    pub skipped_frames: usize,
    /// Transient-launch retries across the stream.
    pub retries: usize,
    /// Total deterministic backoff charged, milliseconds.
    pub total_backoff_ms: f64,
    /// Frames that ran with at least one pyramid level shed.
    pub shed_frames: usize,
}

impl StreamStats {
    /// Steady-state throughput with decode overlapped.
    pub fn pipelined_fps(&self) -> f64 {
        if self.total_period_ms <= 0.0 {
            return 0.0;
        }
        1000.0 * self.frames as f64 / self.total_period_ms
    }

    /// Throughput if decode and detection ran back-to-back (no overlap).
    pub fn unpipelined_fps(&self) -> f64 {
        let total = self.total_decode_ms + self.total_detect_ms;
        if total <= 0.0 {
            return 0.0;
        }
        1000.0 * self.frames as f64 / total
    }

    pub fn mean_detect_ms(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_detect_ms / self.frames as f64
        }
    }

    /// `true` when every processed frame has exactly one outcome.
    pub fn all_frames_accounted(&self) -> bool {
        self.ok_frames + self.degraded_frames + self.skipped_frames == self.frames
    }
}

/// A face detector with pipelined-stream accounting and recovery.
pub struct VideoDetector {
    detector: FaceDetector,
    stats: StreamStats,
    deadline_ms: f64,
    missed_deadlines: usize,
    policy: RecoveryPolicy,
    /// Levels currently shed by the deadline controller.
    shed: usize,
    /// Sliding window of recent effective detect times, milliseconds.
    window: VecDeque<f64>,
}

impl VideoDetector {
    /// `playback_fps` sets the display deadline (24 fps -> 41.7 ms).
    /// Rejects non-finite or non-positive rates.
    pub fn new(
        cascade: &Cascade,
        config: DetectorConfig,
        playback_fps: f64,
    ) -> Result<Self, DetectorError> {
        if !(playback_fps.is_finite() && playback_fps > 0.0) {
            return Err(DetectorError::BadPlaybackFps { fps: playback_fps });
        }
        Ok(Self {
            detector: FaceDetector::try_new(cascade, config)?,
            stats: StreamStats::default(),
            deadline_ms: 1000.0 / playback_fps,
            missed_deadlines: 0,
            policy: RecoveryPolicy::default(),
            shed: 0,
            window: VecDeque::new(),
        })
    }

    /// Replace the recovery policy (builder style).
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Process one decoded frame (luma plane + its decode latency).
    /// Kept for callers that manage decode themselves; routes through the
    /// same recovery layer as [`Self::process_decoded`].
    pub fn process(
        &mut self,
        luma: &GrayImage,
        decode_ms: f64,
    ) -> Result<FrameResult, DetectorError> {
        let frame = self.stats.frames;
        let report = self.run_one(frame, luma, decode_ms, None);
        match report.result {
            Some(r) => Ok(r),
            None => Err(match report.skipped {
                Some(SkipReason::Detect(e)) => e,
                Some(SkipReason::Decode(fault)) => DetectorError::Decode { frame, fault },
                None => DetectorError::InvalidConfig { reason: "skip without reason" },
            }),
        }
    }

    /// Process one [`DecodedFrame`] from the hardware decoder, honouring
    /// its fault flag. Never panics and never aborts the stream: the
    /// report says what happened.
    pub fn process_decoded(&mut self, frame: &DecodedFrame) -> FrameReport {
        self.run_one(frame.index, &frame.luma, frame.decode_ms, frame.fault)
    }

    /// Drain a whole decoded stream (e.g. an `fd_video::HwDecoder`),
    /// returning one report per frame.
    pub fn run_stream<I>(&mut self, frames: I) -> Vec<FrameReport>
    where
        I: IntoIterator<Item = DecodedFrame>,
    {
        frames.into_iter().map(|f| self.process_decoded(&f)).collect()
    }

    fn run_one(
        &mut self,
        frame_idx: usize,
        luma: &GrayImage,
        decode_ms: f64,
        decode_fault: Option<DecodeFault>,
    ) -> FrameReport {
        let mut report = FrameReport {
            frame: frame_idx,
            outcome: FrameOutcome::Ok,
            degraded: Vec::new(),
            skipped: None,
            retries: 0,
            backoff_ms: 0.0,
            shed_levels: self.shed,
            result: None,
        };

        // A dropped frame never reaches the device.
        if decode_fault == Some(DecodeFault::Dropped) {
            report.outcome = FrameOutcome::Skipped;
            report.skipped = Some(SkipReason::Decode(DecodeFault::Dropped));
            self.account(&report, decode_ms, 0.0);
            return report;
        }
        if decode_fault == Some(DecodeFault::Corrupted) {
            report.degraded.push(DegradeReason::CorruptInput);
        }

        // Shed the plan's tail (the smallest scales); always keep level 0.
        let plan = match self.detector.pyramid_plan(luma) {
            Ok(p) => p,
            Err(e) => {
                report.outcome = FrameOutcome::Skipped;
                report.skipped = Some(SkipReason::Detect(e.at_frame(frame_idx)));
                self.account(&report, decode_ms, 0.0);
                return report;
            }
        };
        let full_len = plan.len();
        let keep = full_len.saturating_sub(self.shed).max(1);
        let plan = &plan[..keep];
        report.shed_levels = full_len - keep;

        // Bounded retry with deterministic exponential backoff.
        let result = loop {
            match self.detector.detect_with_plan(luma, plan) {
                Ok(r) => break Ok(r),
                Err(e) if e.is_transient() && report.retries < self.policy.max_retries => {
                    report.backoff_ms += self.policy.backoff_ms(report.retries);
                    report.retries += 1;
                }
                Err(e) => break Err(e),
            }
        };

        match result {
            Ok(r) => {
                if report.retries > 0 {
                    report
                        .degraded
                        .push(DegradeReason::RetriedLaunches { retries: report.retries });
                }
                if report.shed_levels > 0 {
                    report
                        .degraded
                        .push(DegradeReason::ShedScales { shed_levels: report.shed_levels });
                }
                report.outcome = if report.degraded.is_empty() {
                    FrameOutcome::Ok
                } else {
                    FrameOutcome::Degraded
                };
                let detect_ms = r.detect_ms;
                report.result = Some(r);
                self.account(&report, decode_ms, detect_ms);
            }
            Err(e) => {
                report.outcome = FrameOutcome::Skipped;
                report.skipped = Some(SkipReason::Detect(e.at_frame(frame_idx)));
                self.account(&report, decode_ms, 0.0);
            }
        }
        report
    }

    /// Fold one frame into the stats and advance the deadline controller.
    fn account(&mut self, report: &FrameReport, decode_ms: f64, detect_ms: f64) {
        // Backoff is wall-clock the frame spent waiting on the device.
        let effective_detect = detect_ms + report.backoff_ms;
        self.stats.frames += 1;
        self.stats.total_decode_ms += decode_ms;
        self.stats.total_detect_ms += effective_detect;
        self.stats.total_period_ms += decode_ms.max(effective_detect);
        self.stats.max_detect_ms = self.stats.max_detect_ms.max(effective_detect);
        self.stats.retries += report.retries as usize;
        self.stats.total_backoff_ms += report.backoff_ms;
        if report.shed_levels > 0 && report.result.is_some() {
            self.stats.shed_frames += 1;
        }
        if let Some(r) = &report.result {
            self.stats.total_detections += r.detections.len();
        }
        match report.outcome {
            FrameOutcome::Ok => self.stats.ok_frames += 1,
            FrameOutcome::Degraded => self.stats.degraded_frames += 1,
            FrameOutcome::Skipped => self.stats.skipped_frames += 1,
        }

        let missed = effective_detect > self.deadline_ms;
        if missed && report.result.is_some() {
            self.missed_deadlines += 1;
        }

        // Deadline controller: only frames that actually ran detection
        // inform the shed/restore decision.
        if self.policy.max_shed_levels == 0 || report.result.is_none() {
            return;
        }
        self.window.push_back(effective_detect);
        while self.window.len() > self.policy.deadline_window {
            self.window.pop_front();
        }
        if self.window.len() < self.policy.deadline_window {
            return;
        }
        let misses =
            self.window.iter().filter(|&&ms| ms > self.deadline_ms).count() as f64;
        let miss_fraction = misses / self.window.len() as f64;
        let mean_ms: f64 = self.window.iter().sum::<f64>() / self.window.len() as f64;
        if miss_fraction >= self.policy.shed_miss_fraction
            && self.shed < self.policy.max_shed_levels
        {
            self.shed += 1;
            self.window.clear();
        } else if self.shed > 0
            && mean_ms <= self.policy.restore_headroom_fraction * self.deadline_ms
        {
            self.shed -= 1;
            self.window.clear();
        }
    }

    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Pyramid levels the deadline controller is currently shedding.
    pub fn shed_levels(&self) -> usize {
        self.shed
    }

    /// Frames whose detection missed the playback deadline.
    pub fn missed_deadlines(&self) -> usize {
        self.missed_deadlines
    }

    /// The display deadline in milliseconds (the paper's 40 ms line for
    /// 24 fps playback, rounded by their figure).
    pub fn deadline_ms(&self) -> f64 {
        self.deadline_ms
    }

    /// The underlying detector (profiler access, mode switching).
    pub fn detector_mut(&mut self) -> &mut FaceDetector {
        &mut self.detector
    }

    pub fn detector(&self) -> &FaceDetector {
        &self.detector
    }

    /// Capture the mutable streaming state for a checkpoint. Together
    /// with the construction inputs (cascade, config, playback fps,
    /// policy) and the device fault cursor, this is everything needed to
    /// rebuild a `VideoDetector` that continues bit-identically.
    pub fn snapshot(&self) -> RecoverySnapshot {
        RecoverySnapshot {
            stats: self.stats.clone(),
            shed: self.shed,
            missed_deadlines: self.missed_deadlines,
            window: self.window.iter().copied().collect(),
        }
    }

    /// Restore streaming state captured by [`Self::snapshot`] into a
    /// freshly constructed detector (the resume half of checkpointing).
    pub fn restore(&mut self, snap: &RecoverySnapshot) {
        self.stats = snap.stats.clone();
        self.shed = snap.shed;
        self.missed_deadlines = snap.missed_deadlines;
        self.window = snap.window.iter().copied().collect();
    }
}

/// The mutable streaming state of a [`VideoDetector`], as captured by
/// [`VideoDetector::snapshot`]. Everything else about a session is either
/// a construction input or deterministic device state reachable through
/// [`fd_gpu::FaultCursor`].
#[derive(Debug, Clone, PartialEq)]
pub struct RecoverySnapshot {
    pub stats: StreamStats,
    /// Pyramid levels currently shed by the deadline controller.
    pub shed: usize,
    /// Frames that missed the playback deadline so far.
    pub missed_deadlines: usize,
    /// Deadline controller's sliding window of effective detect times.
    pub window: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};

    fn cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("t", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn frame() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, _| (x * 3) as f32)
    }

    fn detector(fps: f64) -> VideoDetector {
        VideoDetector::new(&cascade(), DetectorConfig::default(), fps).unwrap()
    }

    #[test]
    fn stats_accumulate_across_frames() {
        let mut vd = detector(24.0);
        for _ in 0..3 {
            vd.process(&frame(), 9.0).unwrap();
        }
        let s = vd.stats();
        assert_eq!(s.frames, 3);
        assert_eq!(s.ok_frames, 3);
        assert!(s.all_frames_accounted());
        assert!((s.total_decode_ms - 27.0).abs() < 1e-9);
        assert!(s.total_detect_ms > 0.0);
        assert!(s.max_detect_ms > 0.0);
    }

    #[test]
    fn pipelined_fps_uses_the_slower_stage() {
        let mut vd = detector(24.0);
        vd.process(&frame(), 50.0).unwrap(); // decode-bound frame
        let s = vd.stats();
        // Period = max(decode, detect) = 50 ms -> 20 fps.
        assert!((s.pipelined_fps() - 20.0).abs() < 1.0);
        // Unpipelined is strictly slower.
        assert!(s.unpipelined_fps() < s.pipelined_fps());
    }

    #[test]
    fn deadline_misses_are_counted() {
        // Absurd playback rate so every frame misses.
        let mut vd = detector(1e9);
        vd.process(&frame(), 1.0).unwrap();
        assert_eq!(vd.missed_deadlines(), 1);
        // Relaxed deadline: no misses.
        let mut ok = detector(0.001);
        ok.process(&frame(), 1.0).unwrap();
        assert_eq!(ok.missed_deadlines(), 0);
    }

    #[test]
    fn non_finite_playback_fps_is_rejected() {
        for fps in [0.0, -24.0, f64::NAN, f64::INFINITY] {
            let r = VideoDetector::new(&cascade(), DetectorConfig::default(), fps);
            assert!(
                matches!(r, Err(DetectorError::BadPlaybackFps { .. })),
                "fps {fps} must be rejected"
            );
        }
    }

    #[test]
    fn transient_launch_faults_are_retried_and_reported() {
        // ~32 launches per frame: even a small per-launch rate fires
        // regularly at the frame level, and a bounded retry recovers.
        let plan = fd_gpu::FaultPlan::seeded(11).with_transient_launch_failures(0.01);
        let mut vd = VideoDetector::new(
            &cascade(),
            DetectorConfig { fault_plan: Some(plan), ..DetectorConfig::default() },
            24.0,
        )
        .unwrap();
        let mut retried = 0;
        let mut recovered = 0;
        for i in 0..20 {
            let f = DecodedFrame {
                index: i,
                luma: frame(),
                decode_ms: 9.0,
                pts_ms: i as f64 * 41.7,
                fault: None,
            };
            let report = vd.process_decoded(&f);
            retried += report.retries;
            if report.retries > 0 && report.outcome == FrameOutcome::Degraded {
                assert!(report
                    .degraded
                    .iter()
                    .any(|d| matches!(d, DegradeReason::RetriedLaunches { .. })));
                assert!(report.result.is_some());
                assert!(report.backoff_ms > 0.0);
                recovered += 1;
            }
        }
        assert!(retried > 0, "a 1% per-launch rate over 20 frames must fire");
        assert!(recovered > 0, "at least one frame must recover via retry");
        assert_eq!(vd.stats().retries as u32, retried);
        assert!(vd.stats().total_backoff_ms > 0.0);
        assert!(vd.stats().all_frames_accounted());
        assert!(vd.stats().ok_frames > 0, "most frames stay clean");
    }

    #[test]
    fn unrecoverable_timeouts_skip_the_frame_and_keep_the_stream() {
        let plan = fd_gpu::FaultPlan::seeded(5).with_launch_timeouts(0.15);
        let mut vd = VideoDetector::new(
            &cascade(),
            DetectorConfig { fault_plan: Some(plan), ..DetectorConfig::default() },
            24.0,
        )
        .unwrap();
        let mut skipped = 0;
        for i in 0..30 {
            let f = DecodedFrame {
                index: i,
                luma: frame(),
                decode_ms: 9.0,
                pts_ms: 0.0,
                fault: None,
            };
            let report = vd.process_decoded(&f);
            if report.outcome == FrameOutcome::Skipped {
                assert!(matches!(report.skipped, Some(SkipReason::Detect(_))));
                assert!(report.result.is_none());
                skipped += 1;
            }
        }
        assert!(skipped > 0, "15% timeouts over 30 frames must skip some");
        assert_eq!(vd.stats().skipped_frames, skipped);
        assert!(vd.stats().all_frames_accounted());
    }

    #[test]
    fn dropped_and_corrupt_decodes_are_accounted() {
        let mut vd = detector(24.0);
        let dropped = DecodedFrame {
            index: 0,
            luma: frame(),
            decode_ms: 9.0,
            pts_ms: 0.0,
            fault: Some(DecodeFault::Dropped),
        };
        let r = vd.process_decoded(&dropped);
        assert_eq!(r.outcome, FrameOutcome::Skipped);
        assert_eq!(r.skipped, Some(SkipReason::Decode(DecodeFault::Dropped)));

        let corrupt = DecodedFrame {
            index: 1,
            luma: frame(),
            decode_ms: 9.0,
            pts_ms: 0.0,
            fault: Some(DecodeFault::Corrupted),
        };
        let r = vd.process_decoded(&corrupt);
        assert_eq!(r.outcome, FrameOutcome::Degraded);
        assert!(r.degraded.contains(&DegradeReason::CorruptInput));
        assert!(r.result.is_some(), "corrupt frames still run detection");

        let s = vd.stats();
        assert_eq!(s.skipped_frames, 1);
        assert_eq!(s.degraded_frames, 1);
        assert!(s.all_frames_accounted());
    }

    #[test]
    fn deadline_controller_sheds_and_restores_scales() {
        let mut vd = detector(24.0).with_policy(RecoveryPolicy {
            max_shed_levels: 2,
            deadline_window: 4,
            shed_miss_fraction: 0.5,
            restore_headroom_fraction: 0.9,
            ..RecoveryPolicy::default()
        });
        // Force misses: shrink the deadline far below any real detect time.
        vd.deadline_ms = 1e-6;
        for _ in 0..8 {
            vd.process(&frame(), 1.0).unwrap();
        }
        assert!(vd.shed_levels() > 0, "sustained misses must shed scales");
        let full_levels = vd.detector().pyramid_plan(&frame()).unwrap().len();
        let report_plan_len = {
            let f = DecodedFrame {
                index: 99,
                luma: frame(),
                decode_ms: 1.0,
                pts_ms: 0.0,
                fault: None,
            };
            let r = vd.process_decoded(&f);
            r.result.unwrap().timeline.events.len() / 8
        };
        assert!(report_plan_len < full_levels, "shed frames run fewer levels");

        // Headroom returns: a huge deadline restores the shed levels.
        vd.deadline_ms = 1e9;
        let shed_before = vd.shed_levels();
        for _ in 0..12 {
            vd.process(&frame(), 1.0).unwrap();
        }
        assert!(vd.shed_levels() < shed_before, "headroom must restore scales");
    }

    #[test]
    fn default_policy_never_sheds() {
        let mut vd = detector(1e9); // every frame misses the deadline
        for _ in 0..20 {
            vd.process(&frame(), 1.0).unwrap();
        }
        assert_eq!(vd.shed_levels(), 0, "shedding is opt-in");
    }
}
