//! Pipelined video detection: hardware decode overlapped with GPU
//! compute (the paper's deployment shape: "70 fps ... while performing
//! both tasks (i.e. video decoding and face detection) in the GPU").
//!
//! [`VideoDetector`] consumes a stream of decoded frames and tracks the
//! two-stage pipeline's steady-state timing: decode of frame `i + 1`
//! overlaps detection of frame `i` (the hardware decoder is
//! fixed-function logic, independent of the SMs), so the per-frame period
//! is `max(decode, detect)` after the pipeline fills.

use fd_haar::Cascade;
use fd_imgproc::GrayImage;

use crate::detector::{DetectorConfig, FaceDetector, FrameResult};

/// Accumulated streaming statistics.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    pub frames: usize,
    pub total_decode_ms: f64,
    pub total_detect_ms: f64,
    /// Sum of per-frame pipeline periods `max(decode, detect)`.
    pub total_period_ms: f64,
    pub max_detect_ms: f64,
    pub total_detections: usize,
}

impl StreamStats {
    /// Steady-state throughput with decode overlapped.
    pub fn pipelined_fps(&self) -> f64 {
        if self.total_period_ms <= 0.0 {
            return 0.0;
        }
        1000.0 * self.frames as f64 / self.total_period_ms
    }

    /// Throughput if decode and detection ran back-to-back (no overlap).
    pub fn unpipelined_fps(&self) -> f64 {
        let total = self.total_decode_ms + self.total_detect_ms;
        if total <= 0.0 {
            return 0.0;
        }
        1000.0 * self.frames as f64 / total
    }

    pub fn mean_detect_ms(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_detect_ms / self.frames as f64
        }
    }

}

/// A face detector with pipelined-stream accounting.
pub struct VideoDetector {
    detector: FaceDetector,
    stats: StreamStats,
    deadline_ms: f64,
    missed_deadlines: usize,
}

impl VideoDetector {
    /// `playback_fps` sets the display deadline (24 fps -> 41.7 ms).
    pub fn new(cascade: &Cascade, config: DetectorConfig, playback_fps: f64) -> Self {
        assert!(playback_fps > 0.0);
        Self {
            detector: FaceDetector::new(cascade, config),
            stats: StreamStats::default(),
            deadline_ms: 1000.0 / playback_fps,
            missed_deadlines: 0,
        }
    }

    /// Process one decoded frame (luma plane + its decode latency).
    pub fn process(&mut self, luma: &GrayImage, decode_ms: f64) -> FrameResult {
        let r = self.detector.detect(luma);
        self.stats.frames += 1;
        self.stats.total_decode_ms += decode_ms;
        self.stats.total_detect_ms += r.detect_ms;
        self.stats.total_period_ms += decode_ms.max(r.detect_ms);
        self.stats.max_detect_ms = self.stats.max_detect_ms.max(r.detect_ms);
        self.stats.total_detections += r.detections.len();
        if r.detect_ms > self.deadline_ms {
            self.missed_deadlines += 1;
        }
        r
    }

    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Frames whose detection missed the playback deadline.
    pub fn missed_deadlines(&self) -> usize {
        self.missed_deadlines
    }

    /// The display deadline in milliseconds (the paper's 40 ms line for
    /// 24 fps playback, rounded by their figure).
    pub fn deadline_ms(&self) -> f64 {
        self.deadline_ms
    }

    /// The underlying detector (profiler access, mode switching).
    pub fn detector_mut(&mut self) -> &mut FaceDetector {
        &mut self.detector
    }

    pub fn detector(&self) -> &FaceDetector {
        &self.detector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};

    fn cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("t", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn frame() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, _| (x * 3) as f32)
    }

    #[test]
    fn stats_accumulate_across_frames() {
        let mut vd = VideoDetector::new(&cascade(), DetectorConfig::default(), 24.0);
        for _ in 0..3 {
            vd.process(&frame(), 9.0);
        }
        let s = vd.stats();
        assert_eq!(s.frames, 3);
        assert!((s.total_decode_ms - 27.0).abs() < 1e-9);
        assert!(s.total_detect_ms > 0.0);
        assert!(s.max_detect_ms > 0.0);
    }

    #[test]
    fn pipelined_fps_uses_the_slower_stage() {
        let mut vd = VideoDetector::new(&cascade(), DetectorConfig::default(), 24.0);
        vd.process(&frame(), 50.0); // decode-bound frame
        let s = vd.stats();
        // Period = max(decode, detect) = 50 ms -> 20 fps.
        assert!((s.pipelined_fps() - 20.0).abs() < 1.0);
        // Unpipelined is strictly slower.
        assert!(s.unpipelined_fps() < s.pipelined_fps());
    }

    #[test]
    fn deadline_misses_are_counted() {
        // Absurd playback rate so every frame misses.
        let mut vd = VideoDetector::new(&cascade(), DetectorConfig::default(), 1e9);
        vd.process(&frame(), 1.0);
        assert_eq!(vd.missed_deadlines(), 1);
        // Relaxed deadline: no misses.
        let mut ok = VideoDetector::new(&cascade(), DetectorConfig::default(), 0.001);
        ok.process(&frame(), 1.0);
        assert_eq!(ok.missed_deadlines(), 0);
    }
}
