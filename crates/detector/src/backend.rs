//! Backend abstraction over detection engines.
//!
//! The serving layer (`fd-serve`) originally hard-wired
//! [`FaceDetector`] — the paper's Haar cascade. A second engine (the
//! compact CNN cascade of `fd-cnn`) offers a different accuracy/latency
//! point, and the server routes *per request* between them. [`Detector`]
//! captures exactly the surface the server consumes: planning, batched
//! execution over a plan prefix (deadline shedding), memory projection
//! for admission control, and replica construction for fleets.
//!
//! The trait is object-safe so a mixed fleet can hold
//! `Box<dyn Detector>` lanes of different engines behind one device
//! array; [`Backend`] is the request-class tag the router matches lanes
//! against (batching stays same-geometry-*and*-same-backend).

use fd_imgproc::GrayImage;

use crate::detector::{FaceDetector, FrameResult};
use crate::error::DetectorError;

/// Which detection engine serves a request. A third axis of the request
/// class alongside [`Priority`](../fd_serve) and geometry: backends
/// never share a batch, because a batch is one device submission of one
/// engine's kernel chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Backend {
    /// The paper's Haar cascade pipeline — the cheap, throughput tier.
    Haar,
    /// The compact fixed-point CNN cascade — the high-accuracy tier.
    Cnn,
}

impl Backend {
    /// All backends, in `index` order.
    pub const ALL: [Backend; 2] = [Backend::Haar, Backend::Cnn];

    /// Dense index for per-backend arrays.
    pub fn index(self) -> usize {
        match self {
            Backend::Haar => 0,
            Backend::Cnn => 1,
        }
    }

    /// Stable lowercase name for reports and traces.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Haar => "haar",
            Backend::Cnn => "cnn",
        }
    }
}

/// A detection engine the serving layer can drive. Implemented by the
/// Haar [`FaceDetector`] and the CNN cascade (`fd_cnn::CnnDetector`);
/// `DetectionServer`/`FleetServer` are generic over it.
///
/// The contract mirrors `FaceDetector`'s inherent API bit for bit: for
/// the Haar backend every default method forwards to the pre-trait
/// implementation, so serving through the trait is byte-identical to
/// serving the concrete type (asserted by `fd-bench`'s `serve_mixed`
/// identity gate).
pub trait Detector {
    /// The request class this engine serves.
    fn backend(&self) -> Backend;

    /// Full pyramid plan for a frame (largest level first). A deadline
    /// controller truncates this and calls
    /// [`Self::detect_batch_with_plan`] on the prefix to shed the
    /// smallest scales.
    fn pyramid_plan(&self, frame: &GrayImage) -> Result<Vec<(usize, usize)>, DetectorError>;

    /// Detect over a batch of same-geometry frames as one device
    /// submission, evaluating only the pyramid levels in `plan`.
    fn detect_batch_with_plan(
        &mut self,
        frames: &[&GrayImage],
        plan: &[(usize, usize)],
    ) -> Result<Vec<FrameResult>, DetectorError>;

    /// Device bytes a `width x height` stream will hold at steady state
    /// (projected buffer pool + staged model), without allocating.
    fn projected_device_bytes(&self, width: usize, height: usize)
        -> Result<usize, DetectorError>;

    /// Geometry-independent constant-memory footprint (the staged model
    /// tables), the one-time part of [`Self::projected_device_bytes`].
    fn const_bytes(&self) -> usize;

    /// Device bytes currently held (buffer pool + staged constants).
    fn device_bytes(&self) -> usize;

    /// Build `n` replicas of this engine over `n` independent simulated
    /// devices, forking any fault plan per replica (replica 0 verbatim,
    /// so a 1-replica fleet is identical to the original detector).
    fn try_replicas(&self, n: usize) -> Result<Vec<Box<dyn Detector>>, DetectorError>;

    /// Detect faces in one luma frame (plan + single-frame batch).
    fn detect(&mut self, frame: &GrayImage) -> Result<FrameResult, DetectorError> {
        let plan = self.pyramid_plan(frame)?;
        self.detect_with_plan(frame, &plan)
    }

    /// [`Self::detect`] over a prefix of the pyramid plan.
    fn detect_with_plan(
        &mut self,
        frame: &GrayImage,
        plan: &[(usize, usize)],
    ) -> Result<FrameResult, DetectorError> {
        let mut results = self.detect_batch_with_plan(&[frame], plan)?;
        results.pop().ok_or(DetectorError::InvalidConfig {
            reason: "batch execution returned no result for its single frame",
        })
    }

    /// Detect over a batch with each frame's full pyramid (planned from
    /// the first frame; the batch shares one geometry).
    fn detect_batch(&mut self, frames: &[&GrayImage]) -> Result<Vec<FrameResult>, DetectorError> {
        let Some(first) = frames.first() else {
            return Err(DetectorError::InvalidConfig { reason: "empty frame batch" });
        };
        let plan = self.pyramid_plan(first)?;
        self.detect_batch_with_plan(frames, &plan)
    }
}

impl Detector for FaceDetector {
    fn backend(&self) -> Backend {
        Backend::Haar
    }

    fn pyramid_plan(&self, frame: &GrayImage) -> Result<Vec<(usize, usize)>, DetectorError> {
        FaceDetector::pyramid_plan(self, frame)
    }

    fn detect_batch_with_plan(
        &mut self,
        frames: &[&GrayImage],
        plan: &[(usize, usize)],
    ) -> Result<Vec<FrameResult>, DetectorError> {
        FaceDetector::detect_batch_with_plan(self, frames, plan)
    }

    fn projected_device_bytes(
        &self,
        width: usize,
        height: usize,
    ) -> Result<usize, DetectorError> {
        FaceDetector::projected_device_bytes(self, width, height)
    }

    fn const_bytes(&self) -> usize {
        FaceDetector::const_bytes(self)
    }

    fn device_bytes(&self) -> usize {
        FaceDetector::device_bytes(self)
    }

    fn try_replicas(&self, n: usize) -> Result<Vec<Box<dyn Detector>>, DetectorError> {
        Ok(FaceDetector::try_new_replicas(self.cascade(), self.config().clone(), n)?
            .into_iter()
            .map(|d| Box::new(d) as Box<dyn Detector>)
            .collect())
    }

    // The provided `detect`/`detect_with_plan`/`detect_batch` bodies are
    // not overridden: they recompose exactly the inherent methods'
    // plan-then-batch structure, and a batch of one is bit-identical to
    // a single detect (the pipeline's documented invariant).
}

/// Boxed engines forward everything, so a heterogeneous fleet can hold
/// `Box<dyn Detector>` lanes while `FleetServer` stays generic over one
/// `D: Detector`.
impl Detector for Box<dyn Detector> {
    fn backend(&self) -> Backend {
        (**self).backend()
    }

    fn pyramid_plan(&self, frame: &GrayImage) -> Result<Vec<(usize, usize)>, DetectorError> {
        (**self).pyramid_plan(frame)
    }

    fn detect_batch_with_plan(
        &mut self,
        frames: &[&GrayImage],
        plan: &[(usize, usize)],
    ) -> Result<Vec<FrameResult>, DetectorError> {
        (**self).detect_batch_with_plan(frames, plan)
    }

    fn projected_device_bytes(
        &self,
        width: usize,
        height: usize,
    ) -> Result<usize, DetectorError> {
        (**self).projected_device_bytes(width, height)
    }

    fn const_bytes(&self) -> usize {
        (**self).const_bytes()
    }

    fn device_bytes(&self) -> usize {
        (**self).device_bytes()
    }

    fn try_replicas(&self, n: usize) -> Result<Vec<Box<dyn Detector>>, DetectorError> {
        (**self).try_replicas(n)
    }

    fn detect(&mut self, frame: &GrayImage) -> Result<FrameResult, DetectorError> {
        (**self).detect(frame)
    }

    fn detect_with_plan(
        &mut self,
        frame: &GrayImage,
        plan: &[(usize, usize)],
    ) -> Result<FrameResult, DetectorError> {
        (**self).detect_with_plan(frame, plan)
    }

    fn detect_batch(&mut self, frames: &[&GrayImage]) -> Result<Vec<FrameResult>, DetectorError> {
        (**self).detect_batch(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{Cascade, FeatureKind, HaarFeature, Stage, Stump};

    use crate::detector::DetectorConfig;

    fn edge_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("edge", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn frame() -> GrayImage {
        GrayImage::from_fn(64, 48, |x, y| {
            if (20..30).contains(&x) && (12..36).contains(&y) {
                10.0
            } else if (30..40).contains(&x) && (12..36).contains(&y) {
                245.0
            } else {
                120.0
            }
        })
    }

    #[test]
    fn backend_index_and_name_are_dense_and_stable() {
        assert_eq!(Backend::ALL.len(), 2);
        for (i, b) in Backend::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        assert_eq!(Backend::Haar.name(), "haar");
        assert_eq!(Backend::Cnn.name(), "cnn");
    }

    #[test]
    fn trait_detect_matches_inherent_detect_exactly() {
        let cfg = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        let mut inherent = FaceDetector::try_new(&edge_cascade(), cfg.clone()).unwrap();
        let mut via_trait: Box<dyn Detector> =
            Box::new(FaceDetector::try_new(&edge_cascade(), cfg).unwrap());
        let f = frame();
        let a = inherent.detect(&f).unwrap();
        let b = via_trait.detect(&f).unwrap();
        assert_eq!(a.detections, b.detections);
        assert_eq!(a.raw, b.raw);
        assert_eq!(a.timeline.span_us(), b.timeline.span_us());
    }

    #[test]
    fn trait_replicas_match_inherent_replicas() {
        let cfg = DetectorConfig { min_neighbors: 1, ..DetectorConfig::default() };
        let det = FaceDetector::try_new(&edge_cascade(), cfg.clone()).unwrap();
        let mut boxed = Detector::try_replicas(&det, 2).unwrap();
        let mut plain = FaceDetector::try_new_replicas(&edge_cascade(), cfg, 2).unwrap();
        let f = frame();
        for (b, p) in boxed.iter_mut().zip(plain.iter_mut()) {
            assert_eq!(b.backend(), Backend::Haar);
            let x = b.detect(&f).unwrap();
            let y = p.detect(&f).unwrap();
            assert_eq!(x.detections, y.detections);
        }
        assert!(Detector::try_replicas(&det, 0).is_err(), "zero replicas must be rejected");
    }

    #[test]
    fn memory_projection_passes_through() {
        let det =
            FaceDetector::try_new(&edge_cascade(), DetectorConfig::default()).unwrap();
        let via_trait: &dyn Detector = &det;
        assert_eq!(
            via_trait.projected_device_bytes(64, 48).unwrap(),
            det.projected_device_bytes(64, 48).unwrap()
        );
        assert_eq!(via_trait.const_bytes(), det.const_bytes());
        assert_eq!(via_trait.device_bytes(), det.device_bytes());
    }
}
