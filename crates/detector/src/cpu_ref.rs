//! Pure-CPU reference detector.
//!
//! Runs the same mathematical pipeline as the GPU version — bilinear
//! pyramid, 3-tap anti-alias filter, 8-bit quantization, integral image,
//! quantized-cascade evaluation — using only `fd-imgproc` and `fd-haar`
//! host code. Because every GPU kernel is verified to match its host
//! counterpart bit-for-bit, the reference detector and
//! [`crate::FaceDetector`] must produce *identical* raw windows; the
//! integration suite asserts exactly that.

use fd_haar::encode::quantize_cascade;
use fd_haar::Cascade;
use fd_imgproc::filter::antialias_3tap;
use fd_imgproc::resize::resize_bilinear;
use fd_imgproc::{GrayImage, IntegralImage, Pyramid, Rect};

use crate::group::Detection;

/// Evaluate `cascade` over the full pyramid of `frame`; returns raw
/// detections (windows passing every stage) in frame coordinates.
///
/// The cascade is quantized internally so results line up with the
/// constant-memory copy the GPU evaluates.
pub fn detect_cpu(cascade: &Cascade, frame: &GrayImage, scale_factor: f64) -> Vec<Detection> {
    let cascade = quantize_cascade(cascade);
    let window = cascade.window as usize;
    let full_depth = cascade.depth();
    let plan = Pyramid::plan(frame.width(), frame.height(), scale_factor, window);

    let mut out = Vec::new();
    for (level, &(w, h)) in plan.iter().enumerate() {
        let scaled =
            if level == 0 { frame.clone() } else { resize_bilinear(frame, w, h) };
        let filtered = antialias_3tap(&scaled);
        let ii = IntegralImage::from_gray(&filtered);
        let scale = scale_factor.powi(level as i32);
        for oy in 0..=h - window {
            for ox in 0..=w - window {
                let r = cascade.eval_window(&ii, ox, oy);
                if r.depth == full_depth {
                    let size = (window as f64 * scale).round() as u32;
                    out.push(Detection {
                        rect: Rect::new(
                            (ox as f64 * scale).round() as i32,
                            (oy as f64 * scale).round() as i32,
                            size,
                            size,
                        ),
                        score: r.score,
                        scale: level,
                    });
                }
            }
        }
    }
    out
}

/// Per-level deepest-stage maps, for window-exact comparison with the GPU
/// pipeline's [`crate::ScaleOutput::depth`].
pub fn depth_maps_cpu(
    cascade: &Cascade,
    frame: &GrayImage,
    scale_factor: f64,
) -> Vec<(usize, usize, Vec<u32>)> {
    let cascade = quantize_cascade(cascade);
    let window = cascade.window as usize;
    let plan = Pyramid::plan(frame.width(), frame.height(), scale_factor, window);
    let mut maps = Vec::new();
    for (level, &(w, h)) in plan.iter().enumerate() {
        let scaled =
            if level == 0 { frame.clone() } else { resize_bilinear(frame, w, h) };
        let filtered = antialias_3tap(&scaled);
        let ii = IntegralImage::from_gray(&filtered);
        let mut depth = vec![0u32; w * h];
        for oy in 0..=h - window {
            for ox in 0..=w - window {
                depth[oy * w + ox] = cascade.eval_window(&ii, ox, oy).depth;
            }
        }
        maps.push((w, h, depth));
    }
    maps
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};

    fn edge_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("edge", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    #[test]
    fn finds_the_planted_pattern() {
        let frame = GrayImage::from_fn(64, 48, |x, y| {
            if (20..30).contains(&x) && (8..32).contains(&y) {
                0.0
            } else if (30..40).contains(&x) && (8..32).contains(&y) {
                255.0
            } else {
                120.0
            }
        });
        let dets = detect_cpu(&edge_cascade(), &frame, 1.25);
        assert!(!dets.is_empty());
        // Every detection window must straddle the contrast boundary x=30.
        for d in &dets {
            assert!(d.rect.x <= 30 && d.rect.right() >= 30, "{:?}", d.rect);
        }
    }

    #[test]
    fn depth_maps_cover_every_level() {
        let frame = GrayImage::from_fn(60, 50, |x, _| (x * 4) as f32);
        let maps = depth_maps_cpu(&edge_cascade(), &frame, 1.25);
        let plan = Pyramid::plan(60, 50, 1.25, 24);
        assert_eq!(maps.len(), plan.len());
        for ((w, h, depth), (pw, ph)) in maps.iter().zip(&plan) {
            assert_eq!((w, h), (pw, ph));
            assert_eq!(depth.len(), w * h);
        }
    }

    #[test]
    fn flat_frame_yields_no_detections() {
        let frame = GrayImage::from_fn(48, 48, |_, _| 99.0);
        assert!(detect_cpu(&edge_cascade(), &frame, 1.25).is_empty());
    }
}
