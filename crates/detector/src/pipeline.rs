//! Per-frame pipeline orchestration (paper Fig. 1).
//!
//! For every pyramid level the pipeline launches the level's seven
//! kernels — scale, filter, scan, transpose, scan, transpose, cascade,
//! display — into a *per-level stream*. In
//! [`fd_gpu::ExecMode::Concurrent`] mode the device scheduler backfills
//! idle SMs with blocks from other levels' streams (most effective for the
//! small levels, whose grids cannot occupy the device on their own); in
//! [`fd_gpu::ExecMode::Serial`] mode every kernel drains before the next
//! starts, reproducing the paper's baseline.

use fd_gpu::{ConstPtr, Gpu, Texture2D, Timeline};
use fd_haar::encode::{encode_cascade, quantize_cascade};
use fd_haar::Cascade;
use fd_imgproc::{GrayImage, Pyramid};

use crate::kernels::scan::ScanInput;
use crate::kernels::{
    CascadeKernel, DisplayKernel, FilterKernel, ScaleKernel, ScanRowsKernel, TransposeKernel,
};

/// Readback of one pyramid level after a frame.
#[derive(Debug, Clone)]
pub struct ScaleOutput {
    pub level: usize,
    pub width: usize,
    pub height: usize,
    /// Multiply level coordinates by this to reach frame coordinates.
    pub scale: f64,
    /// Deepest stage reached per pixel.
    pub depth: Vec<u32>,
    /// Accumulated stage margin per pixel.
    pub score: Vec<f32>,
    /// Display-kernel hit mask.
    pub hits: Vec<u32>,
}

/// The GPU face-detection pipeline bound to one cascade.
pub struct FramePipeline {
    /// The simulated device (public for profiler access).
    pub gpu: Gpu,
    cascade: Cascade,
    const_ptr: ConstPtr,
    scale_factor: f64,
}

impl FramePipeline {
    /// Stage the (quantized) cascade in constant memory and prepare the
    /// pipeline. `scale_factor` is the pyramid ratio (paper-typical 1.25).
    pub fn new(mut gpu: Gpu, cascade: &Cascade, scale_factor: f64) -> Self {
        assert!(scale_factor > 1.0);
        let quantized = quantize_cascade(cascade);
        gpu.const_clear();
        let const_ptr = gpu.const_upload(&encode_cascade(&quantized));
        Self { gpu, cascade: quantized, const_ptr, scale_factor }
    }

    /// The quantized cascade the device evaluates.
    pub fn cascade(&self) -> &Cascade {
        &self.cascade
    }

    /// Pyramid scale factor.
    pub fn scale_factor(&self) -> f64 {
        self.scale_factor
    }

    /// Constant-memory bytes occupied by the compressed cascade.
    pub fn const_bytes(&self) -> usize {
        self.const_ptr.len() * 4
    }

    /// Run the full pipeline on one luma frame. Returns the per-level
    /// readbacks and the frame's device timeline (its span is the
    /// detection latency).
    pub fn run_frame(&mut self, frame: &GrayImage) -> (Vec<ScaleOutput>, Timeline) {
        let window = self.cascade.window as usize;
        let (fw, fh) = (frame.width(), frame.height());
        assert!(
            fw >= window && fh >= window,
            "frame smaller than the detection window"
        );
        let plan = Pyramid::plan(fw, fh, self.scale_factor, window);
        let gpu = &mut self.gpu;

        gpu.clear_textures();
        let tex = gpu.bind_texture(Texture2D::from_data(fw, fh, frame.as_slice().to_vec()));

        struct LevelBufs {
            scaled: fd_gpu::DevBuf<f32>,
            filtered: fd_gpu::DevBuf<f32>,
            buf_a: fd_gpu::DevBuf<u32>,
            buf_b: fd_gpu::DevBuf<u32>,
            integral: fd_gpu::DevBuf<u32>,
            depth: fd_gpu::DevBuf<u32>,
            score: fd_gpu::DevBuf<f32>,
            hits: fd_gpu::DevBuf<u32>,
        }

        let mut levels = Vec::with_capacity(plan.len());
        for (level, &(w, h)) in plan.iter().enumerate() {
            let stream = gpu.create_stream();
            let bufs = LevelBufs {
                scaled: gpu.mem.alloc::<f32>(w * h),
                filtered: gpu.mem.alloc::<f32>(w * h),
                buf_a: gpu.mem.alloc::<u32>(w * h),
                buf_b: gpu.mem.alloc::<u32>(w * h),
                integral: gpu.mem.alloc::<u32>(w * h),
                depth: gpu.mem.alloc::<u32>(w * h),
                score: gpu.mem.alloc::<f32>(w * h),
                hits: gpu.mem.alloc::<u32>(w * h),
            };

            let scale = ScaleKernel {
                src: tex,
                src_w: fw,
                src_h: fh,
                dst: bufs.scaled,
                dst_w: w,
                dst_h: h,
            };
            gpu.launch(&scale, scale.config(), stream).expect("scale launch");

            let filter =
                FilterKernel { src: bufs.scaled, dst: bufs.filtered, width: w, height: h };
            gpu.launch(&filter, filter.config(), stream).expect("filter launch");

            let scan1 = ScanRowsKernel {
                input: ScanInput::QuantizeF32(bufs.filtered),
                output: bufs.buf_a,
                width: w,
                height: h,
            };
            gpu.launch(&scan1, scan1.config(), stream).expect("scan1 launch");

            let t1 = TransposeKernel { src: bufs.buf_a, dst: bufs.buf_b, width: w, height: h };
            gpu.launch(&t1, t1.config(), stream).expect("transpose1 launch");

            let scan2 = ScanRowsKernel {
                input: ScanInput::U32(bufs.buf_b),
                output: bufs.buf_a,
                width: h,
                height: w,
            };
            gpu.launch(&scan2, scan2.config(), stream).expect("scan2 launch");

            let t2 =
                TransposeKernel { src: bufs.buf_a, dst: bufs.integral, width: h, height: w };
            gpu.launch(&t2, t2.config(), stream).expect("transpose2 launch");

            let cascade = CascadeKernel::new(
                &self.cascade,
                bufs.integral,
                w,
                h,
                bufs.depth,
                bufs.score,
                self.const_ptr,
            );
            gpu.launch(&cascade, cascade.config(), stream).expect("cascade launch");

            let display = DisplayKernel {
                depth: bufs.depth,
                hits: bufs.hits,
                width: w,
                height: h,
                required_depth: self.cascade.depth(),
            };
            gpu.launch(&display, display.config(), stream).expect("display launch");

            levels.push((level, w, h, bufs));
        }

        let timeline = gpu.synchronize();

        let mut outputs = Vec::with_capacity(levels.len());
        for (level, w, h, bufs) in levels {
            outputs.push(ScaleOutput {
                level,
                width: w,
                height: h,
                scale: self.scale_factor.powi(level as i32),
                depth: gpu.mem.download(bufs.depth),
                score: gpu.mem.download(bufs.score),
                hits: gpu.mem.download(bufs.hits),
            });
            gpu.mem.free(bufs.scaled);
            gpu.mem.free(bufs.filtered);
            gpu.mem.free(bufs.buf_a);
            gpu.mem.free(bufs.buf_b);
            gpu.mem.free(bufs.integral);
            gpu.mem.free(bufs.depth);
            gpu.mem.free(bufs.score);
            gpu.mem.free(bufs.hits);
        }
        (outputs, timeline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode};
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};
    use fd_imgproc::IntegralImage;

    fn simple_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("t", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 4096, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn test_frame() -> GrayImage {
        // A 96x72 frame with one strong edge pattern.
        GrayImage::from_fn(96, 72, |x, y| {
            if (20..32).contains(&x) && (10..34).contains(&y) {
                10.0
            } else if (32..44).contains(&x) && (10..34).contains(&y) {
                250.0
            } else {
                100.0
            }
        })
    }

    #[test]
    fn pipeline_levels_match_host_reference() {
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let frame = test_frame();
        let (outputs, timeline) = p.run_frame(&frame);
        assert!(outputs.len() >= 4, "96x72 at 1.25 should give several levels");
        assert!(timeline.span_us() > 0.0);

        // Reference: host-side scale+filter+integral+eval per level.
        for out in &outputs {
            let scaled = if out.level == 0 {
                frame.clone()
            } else {
                fd_imgproc::resize::resize_bilinear(&frame, out.width, out.height)
            };
            let filtered = fd_imgproc::filter::antialias_3tap(&scaled);
            let ii = IntegralImage::from_gray(&filtered);
            let cq = p.cascade().clone();
            for oy in (0..=out.height - 24).step_by(7) {
                for ox in (0..=out.width - 24).step_by(7) {
                    let r = cq.eval_window(&ii, ox, oy);
                    assert_eq!(
                        out.depth[oy * out.width + ox],
                        r.depth,
                        "level {} window ({ox},{oy})",
                        out.level
                    );
                }
            }
        }
    }

    #[test]
    fn serial_and_concurrent_agree_functionally() {
        let frame = test_frame();
        let run = |mode| {
            let gpu = Gpu::new(DeviceSpec::gtx470(), mode);
            let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
            let (outputs, timeline) = p.run_frame(&frame);
            (outputs, timeline)
        };
        let (a, ta) = run(ExecMode::Serial);
        let (b, tb) = run(ExecMode::Concurrent);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.depth, y.depth);
            assert_eq!(x.hits, y.hits);
        }
        // Concurrency can only help.
        assert!(
            tb.span_us() <= ta.span_us() * 1.001,
            "concurrent {} vs serial {}",
            tb.span_us(),
            ta.span_us()
        );
    }

    #[test]
    fn hits_are_thresholded_depths() {
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let (outputs, _) = p.run_frame(&test_frame());
        let req = p.cascade().depth();
        for out in &outputs {
            for (d, h) in out.depth.iter().zip(&out.hits) {
                assert_eq!(*h, (*d >= req) as u32);
            }
        }
    }

    #[test]
    fn memory_is_reclaimed_between_frames() {
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let frame = test_frame();
        let _ = p.run_frame(&frame);
        let live_after_first = p.gpu.mem.live_bytes();
        for _ in 0..3 {
            let _ = p.run_frame(&frame);
        }
        assert_eq!(p.gpu.mem.live_bytes(), live_after_first, "no leak across frames");
    }
}
