//! Per-frame pipeline orchestration (paper Fig. 1).
//!
//! For every pyramid level the pipeline launches the level's seven
//! kernels — scale, filter, scan, transpose, scan, transpose, cascade,
//! display — into a *per-level stream*. In
//! [`fd_gpu::ExecMode::Concurrent`] mode the device scheduler backfills
//! idle SMs with blocks from other levels' streams (most effective for the
//! small levels, whose grids cannot occupy the device on their own); in
//! [`fd_gpu::ExecMode::Serial`] mode every kernel drains before the next
//! starts, reproducing the paper's baseline.
//!
//! # Frame-persistent buffer pool
//!
//! Device buffers and streams are pooled across frames, keyed by the
//! pyramid plan: the first frame of a given geometry allocates one set of
//! per-level buffers, and every following frame of the same geometry
//! reuses them without touching the allocator (every kernel in the chain
//! fully overwrites its outputs, so no clearing is needed either). This
//! mirrors how a production video detector holds its workspaces for the
//! stream's lifetime — `cudaMalloc`/`cudaFree` per frame would serialize
//! against the device. A frame-size change frees the old pool and builds
//! a new one; [`FramePipeline::release_pool`] returns the memory
//! explicitly. Steady-state frames perform **zero** device allocations
//! (asserted via [`fd_gpu::DeviceMemory::alloc_count`] in tests).

use fd_gpu::{
    BatchedKernel, ConstPtr, DevBuf, FusedChain, GeomClass, Gpu, Kernel, LaunchConfig,
    LaunchError, ShapeCache, StreamId, TexId, Texture2D, Timeline,
};
use fd_haar::encode::{encode_cascade, quantize_cascade};
use fd_haar::Cascade;
use fd_imgproc::{GrayImage, Pyramid};

use crate::error::DetectorError;
use crate::kernels::scan::ScanInput;
use crate::kernels::{
    CascadeKernel, DisplayKernel, FilterKernel, ScaleKernel, ScanRowsKernel, TransposeKernel,
};

/// Readback of one pyramid level after a frame.
#[derive(Debug, Clone)]
pub struct ScaleOutput {
    pub level: usize,
    pub width: usize,
    pub height: usize,
    /// Multiply level coordinates by this to reach frame coordinates.
    pub scale: f64,
    /// Deepest stage reached per pixel.
    pub depth: Vec<u32>,
    /// Accumulated stage margin per pixel.
    pub score: Vec<f32>,
    /// Display-kernel hit mask.
    pub hits: Vec<u32>,
}

/// Device workspaces for one pyramid level (each `w * h` elements).
struct LevelBufs {
    scaled: DevBuf<f32>,
    filtered: DevBuf<f32>,
    buf_a: DevBuf<u32>,
    buf_b: DevBuf<u32>,
    integral: DevBuf<u32>,
    depth: DevBuf<u32>,
    score: DevBuf<f32>,
    hits: DevBuf<u32>,
}

impl LevelBufs {
    fn alloc(mem: &mut fd_gpu::DeviceMemory, n: usize) -> Self {
        Self {
            scaled: mem.alloc::<f32>(n),
            filtered: mem.alloc::<f32>(n),
            buf_a: mem.alloc::<u32>(n),
            buf_b: mem.alloc::<u32>(n),
            integral: mem.alloc::<u32>(n),
            depth: mem.alloc::<u32>(n),
            score: mem.alloc::<f32>(n),
            hits: mem.alloc::<u32>(n),
        }
    }

    fn free(self, mem: &mut fd_gpu::DeviceMemory) {
        mem.free(self.scaled);
        mem.free(self.filtered);
        mem.free(self.buf_a);
        mem.free(self.buf_b);
        mem.free(self.integral);
        mem.free(self.depth);
        mem.free(self.score);
        mem.free(self.hits);
    }

    /// Device bytes held: eight `w * h` buffers of 4-byte elements.
    fn bytes(n: usize) -> usize {
        8 * 4 * n
    }
}

/// The frame-persistent buffer pool (module docs): per-level streams and
/// per-request-slot workspaces, valid for one frame geometry.
///
/// `slots[s][level]` holds the workspaces request-slot `s` uses at
/// pyramid level `level`. Single-frame detection only ever touches slot
/// 0; a batched submission of B frames occupies slots `0..B`, and the
/// pool grows (and then keeps) as many slots as the largest batch seen,
/// so steady-state serving is allocation-free just like steady-state
/// video decoding.
struct FramePool {
    frame_dims: (usize, usize),
    plan: Vec<(usize, usize)>,
    /// One stream per pyramid level, shared by every request slot (the
    /// batched launch path fuses the slots of one level into one grid).
    streams: Vec<StreamId>,
    slots: Vec<Vec<LevelBufs>>,
    bytes: usize,
}

impl FramePool {
    /// Device bytes of one request slot under `plan`.
    fn slot_bytes(plan: &[(usize, usize)]) -> usize {
        plan.iter().map(|&(w, h)| LevelBufs::bytes(w * h)).sum()
    }
}

/// The GPU face-detection pipeline bound to one cascade.
pub struct FramePipeline {
    /// The simulated device (public for profiler access).
    pub gpu: Gpu,
    cascade: Cascade,
    const_ptr: ConstPtr,
    scale_factor: f64,
    pool: Option<FramePool>,
    /// Fuse the smoothing/integral stages into combined launches (see
    /// [`fd_gpu::fuse`]). Off by default; detections are bit-identical
    /// either way, only launch count and the traffic ledger change.
    fusion: bool,
    /// Re-tile shape-polymorphic kernels per geometry class through the
    /// occupancy model (see [`fd_gpu::tune`]). Off by default; detections
    /// are byte-identical either way, only block shapes and timing change.
    autotune: bool,
    /// Tuned-shape memo, keyed by `(kernel, geometry class)` — shared by
    /// every level, frame and batch this pipeline runs.
    shapes: ShapeCache,
}

/// The launch geometry for `kernel`, re-tiled through the shape cache
/// when autotuning is on and the kernel advertises a family; the declared
/// default otherwise.
fn tuned_cfg<K: Kernel>(
    shapes: Option<&mut ShapeCache>,
    kernel: &K,
    class: GeomClass,
    default_cfg: LaunchConfig,
) -> LaunchConfig {
    match (shapes, kernel.shape_family()) {
        (Some(shapes), Some(family)) => {
            let c = shapes.choose(class, &family);
            LaunchConfig { grid: c.grid, block: c.block, shared_mem_bytes: c.shared_mem_bytes }
        }
        _ => default_cfg,
    }
}

impl FramePipeline {
    /// Stage the (quantized) cascade in constant memory and prepare the
    /// pipeline. `scale_factor` is the pyramid ratio (paper-typical 1.25).
    ///
    /// Panicking form of [`Self::try_new`], kept for construction paths
    /// whose inputs are static (benchmarks, examples).
    pub fn new(gpu: Gpu, cascade: &Cascade, scale_factor: f64) -> Self {
        Self::try_new(gpu, cascade, scale_factor).unwrap()
    }

    /// Fallible constructor: validates the scale factor, the cascade
    /// window and the constant-memory footprint of the encoded cascade.
    pub fn try_new(
        mut gpu: Gpu,
        cascade: &Cascade,
        scale_factor: f64,
    ) -> Result<Self, DetectorError> {
        if !(scale_factor.is_finite() && scale_factor > 1.0) {
            return Err(DetectorError::BadScaleFactor { scale_factor });
        }
        if cascade.window != 24 {
            return Err(DetectorError::InvalidConfig {
                reason: "the cascade kernel is specialized for 24-px windows",
            });
        }
        let quantized = quantize_cascade(cascade);
        gpu.const_clear();
        let const_ptr = gpu
            .try_const_upload(&encode_cascade(&quantized))
            .map_err(|source| DetectorError::Memory {
                context: "staging the encoded cascade in constant memory",
                source,
            })?;
        let shapes = ShapeCache::new(gpu.spec.clone(), gpu.cost.clone());
        Ok(Self {
            gpu,
            cascade: quantized,
            const_ptr,
            scale_factor,
            pool: None,
            fusion: fd_gpu::env_fusion_default(),
            autotune: fd_gpu::env_autotune_default(),
            shapes,
        })
    }

    /// Enable or disable kernel fusion for the scale/smoothing/integral
    /// stages. With fusion on, scale+filter+scan+transpose and
    /// scan+transpose launch as two fused kernels per level instead of
    /// six, paying one launch overhead each and keeping the
    /// intermediates' traffic on-chip.
    pub fn set_fusion(&mut self, fusion: bool) {
        self.fusion = fusion;
    }

    /// Whether the smoothing/integral stages launch fused.
    pub fn fusion(&self) -> bool {
        self.fusion
    }

    /// Enable or disable occupancy-driven launch-shape autotuning. With
    /// autotuning on, every kernel that advertises a [`ShapeFamily`]
    /// (cascade, scale, filter, scan) launches with the block shape the
    /// scheduler's occupancy model scores best for its geometry class,
    /// memoized in a per-pipeline [`ShapeCache`]. Detections are
    /// byte-identical either way; only block shapes and timing change.
    /// Fused chains keep their stacked default shapes (the chain contract
    /// requires one thread count across stages), so the knob composes
    /// with [`Self::set_fusion`].
    ///
    /// [`ShapeFamily`]: fd_gpu::ShapeFamily
    pub fn set_autotune(&mut self, autotune: bool) {
        self.autotune = autotune;
    }

    /// Whether launch shapes are autotuned.
    pub fn autotune(&self) -> bool {
        self.autotune
    }

    /// Tuned `(kernel, geometry)` classes resolved so far.
    pub fn tuned_classes(&self) -> usize {
        self.shapes.len()
    }

    /// The quantized cascade the device evaluates.
    pub fn cascade(&self) -> &Cascade {
        &self.cascade
    }

    /// Pyramid scale factor.
    pub fn scale_factor(&self) -> f64 {
        self.scale_factor
    }

    /// Constant-memory bytes occupied by the compressed cascade.
    pub fn const_bytes(&self) -> usize {
        self.const_ptr.len() * 4
    }

    /// Device bytes held by the frame-persistent buffer pool (0 until the
    /// first frame, or after [`Self::release_pool`]).
    pub fn pooled_bytes(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.bytes)
    }

    /// Device bytes the buffer pool *would* hold for a `width x height`
    /// frame, computed without allocating anything. Admission control
    /// charges sessions against a memory budget with this projection
    /// before committing device state.
    pub fn projected_pool_bytes(
        &self,
        width: usize,
        height: usize,
    ) -> Result<usize, DetectorError> {
        let window = self.cascade.window as usize;
        if width < window || height < window {
            return Err(DetectorError::FrameTooSmall { width, height, window });
        }
        let plan = Pyramid::plan(width, height, self.scale_factor, window);
        Ok(plan.iter().map(|&(w, h)| LevelBufs::bytes(w * h)).sum())
    }

    /// Free the frame-persistent buffer pool, returning its device
    /// memory. The next [`Self::run_frame`] rebuilds it.
    pub fn release_pool(&mut self) {
        if let Some(pool) = self.pool.take() {
            for slot in pool.slots {
                for bufs in slot {
                    bufs.free(&mut self.gpu.mem);
                }
            }
        }
    }

    /// Ensure the pool matches `plan` for a `fw x fh` frame with at least
    /// `batch` request slots, rebuilding on geometry change and growing
    /// (never shrinking) the slot count on demand.
    fn ensure_pool(&mut self, fw: usize, fh: usize, plan: &[(usize, usize)], batch: usize) {
        let reusable = self
            .pool
            .as_ref()
            .is_some_and(|p| p.frame_dims == (fw, fh) && p.plan == plan);
        if !reusable {
            self.release_pool();
            let gpu = &mut self.gpu;
            let streams = plan.iter().map(|_| gpu.create_stream()).collect();
            self.pool = Some(FramePool {
                frame_dims: (fw, fh),
                plan: plan.to_vec(),
                streams,
                slots: Vec::new(),
                bytes: 0,
            });
        }
        let Some(pool) = self.pool.as_mut() else { return };
        while pool.slots.len() < batch {
            pool.slots.push(
                plan.iter()
                    .map(|&(w, h)| LevelBufs::alloc(&mut self.gpu.mem, w * h))
                    .collect(),
            );
            pool.bytes += FramePool::slot_bytes(plan);
        }
    }

    /// The full pyramid plan this pipeline would run for a `fw x fh`
    /// frame (largest level first). A deadline controller sheds load by
    /// truncating this plan's tail and calling
    /// [`Self::run_frame_with_plan`].
    pub fn plan_for(&self, frame: &GrayImage) -> Result<Vec<(usize, usize)>, DetectorError> {
        let window = self.cascade.window as usize;
        let (fw, fh) = (frame.width(), frame.height());
        if fw < window || fh < window {
            return Err(DetectorError::FrameTooSmall { width: fw, height: fh, window });
        }
        Ok(Pyramid::plan(fw, fh, self.scale_factor, window))
    }

    /// Launch the scale + smoothing + integral-image construction for
    /// one pyramid level, batched across request slots: bilinear scale,
    /// filter, then the scan → transpose → scan → transpose sequence
    /// that builds the integral image (paper §III-A/B). One code path
    /// serves both modes — unfused it issues the six batched launches of
    /// the baseline; fused it issues two combined launches
    /// (scale+filter+scan+transpose and scan+transpose), paying one
    /// launch overhead each and keeping the chain-internal intermediates
    /// (`scaled`, `filtered`, `buf_a`) off the global traffic ledger.
    /// Functional results are bit-identical either way.
    #[allow(clippy::too_many_arguments)]
    fn launch_level_pyramid_stages(
        gpu: &mut Gpu,
        texs: &[TexId],
        (fw, fh): (usize, usize),
        slots: &[Vec<LevelBufs>],
        level: usize,
        w: usize,
        h: usize,
        stream: StreamId,
        fusion: bool,
        shapes: Option<&mut ShapeCache>,
    ) -> Result<(), (&'static str, LaunchError)> {
        let scales: Vec<_> = texs
            .iter()
            .zip(slots)
            .map(|(&tex, slot)| ScaleKernel {
                src: tex,
                src_w: fw,
                src_h: fh,
                dst: slot[level].scaled,
                dst_w: w,
                dst_h: h,
            })
            .collect();
        let filters: Vec<_> = slots
            .iter()
            .map(|slot| FilterKernel {
                src: slot[level].scaled,
                dst: slot[level].filtered,
                width: w,
                height: h,
            })
            .collect();
        let scan1s: Vec<_> = slots
            .iter()
            .map(|slot| ScanRowsKernel {
                input: ScanInput::QuantizeF32(slot[level].filtered),
                output: slot[level].buf_a,
                width: w,
                height: h,
            })
            .collect();
        let t1s: Vec<_> = slots
            .iter()
            .map(|slot| TransposeKernel {
                src: slot[level].buf_a,
                dst: slot[level].buf_b,
                width: w,
                height: h,
            })
            .collect();
        let scan2s: Vec<_> = slots
            .iter()
            .map(|slot| ScanRowsKernel {
                input: ScanInput::U32(slot[level].buf_b),
                output: slot[level].buf_a,
                width: h,
                height: w,
            })
            .collect();
        let t2s: Vec<_> = slots
            .iter()
            .map(|slot| TransposeKernel {
                src: slot[level].buf_a,
                dst: slot[level].integral,
                width: h,
                height: w,
            })
            .collect();
        let mut sc_cfg = scales[0].config();
        let mut f_cfg = filters[0].config();
        let mut s1_cfg = scan1s[0].config();
        let t1_cfg = t1s[0].config();
        let mut s2_cfg = scan2s[0].config();
        let t2_cfg = t2s[0].config();
        // Fused chains keep their stacked default shapes: one thread
        // count across all chained stages is part of the fusion contract,
        // and per-stage re-tiling would break it. Unfused launches are
        // free to take the tuned shape per stage (the transpose has no
        // family — its diagonal tile is its identity).
        if !fusion {
            if let Some(shapes) = shapes {
                sc_cfg = tuned_cfg(Some(shapes), &scales[0], GeomClass::of(w, h), sc_cfg);
                f_cfg = tuned_cfg(Some(shapes), &filters[0], GeomClass::of(w, h), f_cfg);
                s1_cfg = tuned_cfg(Some(shapes), &scan1s[0], GeomClass::of(w, h), s1_cfg);
                s2_cfg = tuned_cfg(Some(shapes), &scan2s[0], GeomClass::of(h, w), s2_cfg);
            }
        }

        if fusion {
            // Stack each stage across request slots first (grid.z), then
            // fuse the stacked stages; legality is validated per chain at
            // launch and any rejection surfaces as a launch error.
            let scb = BatchedKernel::new(scales, sc_cfg);
            let scb_cfg = scb.stacked_config(sc_cfg);
            let fb = BatchedKernel::new(filters, f_cfg);
            let fb_cfg = fb.stacked_config(f_cfg);
            let s1b = BatchedKernel::new(scan1s, s1_cfg);
            let s1b_cfg = s1b.stacked_config(s1_cfg);
            let t1b = BatchedKernel::new(t1s, t1_cfg);
            let t1b_cfg = t1b.stacked_config(t1_cfg);
            let chain_a = FusedChain::new("scale+filter+scan+transpose")
                .then(scb, scb_cfg)
                .then(fb, fb_cfg)
                .then(s1b, s1b_cfg)
                .then(t1b, t1b_cfg);
            gpu.launch_fused(chain_a, stream).map_err(|e| ("scale+filter+scan+transpose", e))?;

            let s2b = BatchedKernel::new(scan2s, s2_cfg);
            let s2b_cfg = s2b.stacked_config(s2_cfg);
            let t2b = BatchedKernel::new(t2s, t2_cfg);
            let t2b_cfg = t2b.stacked_config(t2_cfg);
            let chain_b =
                FusedChain::new("scan+transpose").then(s2b, s2b_cfg).then(t2b, t2b_cfg);
            gpu.launch_fused(chain_b, stream).map_err(|e| ("scan+transpose", e))?;
        } else {
            gpu.launch_batched(scales, sc_cfg, stream).map_err(|e| ("scale_bilinear", e))?;
            gpu.launch_batched(filters, f_cfg, stream).map_err(|e| ("filter_3tap", e))?;
            gpu.launch_batched(scan1s, s1_cfg, stream).map_err(|e| ("scan_rows", e))?;
            gpu.launch_batched(t1s, t1_cfg, stream).map_err(|e| ("transpose", e))?;
            gpu.launch_batched(scan2s, s2_cfg, stream).map_err(|e| ("scan_rows", e))?;
            gpu.launch_batched(t2s, t2_cfg, stream).map_err(|e| ("transpose", e))?;
        }
        Ok(())
    }

    /// Run the full pipeline on one luma frame. Returns the per-level
    /// readbacks and the frame's device timeline (its span is the
    /// detection latency).
    ///
    /// Steady-state frames (same geometry as the previous one) reuse the
    /// pooled buffers and perform no device allocations. A failed launch
    /// cancels the frame's queued work ([`Gpu::cancel_pending`]) so the
    /// device is clean for a retry; every kernel fully overwrites its
    /// outputs, so a retried frame is unaffected by the aborted one.
    pub fn run_frame(
        &mut self,
        frame: &GrayImage,
    ) -> Result<(Vec<ScaleOutput>, Timeline), DetectorError> {
        let plan = self.plan_for(frame)?;
        self.run_frame_with_plan(frame, &plan)
    }

    /// [`Self::run_frame`] restricted to a prefix of the pyramid plan
    /// (`plan` must be a prefix of [`Self::plan_for`]'s result; the
    /// deadline controller passes a truncated plan to shed the smallest
    /// scales).
    pub fn run_frame_with_plan(
        &mut self,
        frame: &GrayImage,
        plan: &[(usize, usize)],
    ) -> Result<(Vec<ScaleOutput>, Timeline), DetectorError> {
        let (mut batch, timeline) = self.run_batch_with_plan(&[frame], plan)?;
        let Some(outputs) = batch.pop() else {
            return Err(DetectorError::InvalidConfig { reason: "batch produced no output" });
        };
        Ok((outputs, timeline))
    }

    /// Run the pipeline on a *batch* of same-geometry luma frames as one
    /// device submission: at every pyramid level, each of the eight
    /// kernels is launched once for the whole batch
    /// ([`Gpu::launch_batched`], the batch stacked on `grid.z`), so B
    /// requests pay the launch overhead of one and their blocks
    /// co-schedule across SMs. This is the entry point the `fd-serve`
    /// dynamic batcher drives; a batch of one is bit-identical to
    /// [`Self::run_frame_with_plan`].
    ///
    /// Returns one `Vec<ScaleOutput>` per input frame (in input order)
    /// plus the shared device timeline of the submission. All frames
    /// must share one geometry; `plan` must be a prefix of
    /// [`Self::plan_for`] of that geometry.
    pub fn run_batch_with_plan(
        &mut self,
        frames: &[&GrayImage],
        plan: &[(usize, usize)],
    ) -> Result<(Vec<Vec<ScaleOutput>>, Timeline), DetectorError> {
        let Some(first) = frames.first() else {
            return Err(DetectorError::InvalidConfig { reason: "empty frame batch" });
        };
        let (fw, fh) = (first.width(), first.height());
        if frames.iter().any(|f| (f.width(), f.height()) != (fw, fh)) {
            return Err(DetectorError::InvalidConfig {
                reason: "all frames of a batched submission must share one geometry",
            });
        }
        if plan.is_empty() {
            return Err(DetectorError::InvalidConfig { reason: "empty pyramid plan" });
        }
        self.ensure_pool(fw, fh, plan, frames.len());
        let Some(pool) = self.pool.as_ref() else {
            return Err(DetectorError::InvalidConfig { reason: "buffer pool missing" });
        };
        let gpu = &mut self.gpu;

        gpu.clear_textures();
        let mut texs = Vec::with_capacity(frames.len());
        for frame in frames {
            let tex_data = Texture2D::try_from_data(fw, fh, frame.as_slice().to_vec())
                .map_err(|source| DetectorError::Memory {
                    context: "binding the frame texture",
                    source,
                })?;
            texs.push(gpu.bind_texture(tex_data));
        }

        // A launch failure aborts the whole batch: cancel everything still
        // queued so the device (and its profiler) is clean for a retry.
        let fail = |gpu: &mut Gpu, kernel, level, source| {
            gpu.cancel_pending();
            Err(DetectorError::Launch { kernel, level: Some(level), frame: None, source })
        };
        let slots = &pool.slots[..frames.len()];
        let autotune = self.autotune;
        let shapes = &mut self.shapes;
        for (level, (&(w, h), &stream)) in plan.iter().zip(&pool.streams).enumerate() {
            if let Err((kernel, e)) = Self::launch_level_pyramid_stages(
                gpu,
                &texs,
                (fw, fh),
                slots,
                level,
                w,
                h,
                stream,
                self.fusion,
                if autotune { Some(&mut *shapes) } else { None },
            ) {
                return fail(gpu, kernel, level, e);
            }

            let mut cascades: Vec<_> = slots
                .iter()
                .map(|slot| {
                    CascadeKernel::new(
                        &self.cascade,
                        slot[level].integral,
                        w,
                        h,
                        slot[level].depth,
                        slot[level].score,
                        self.const_ptr,
                    )
                })
                .collect();
            // The cascade's shape lives on the kernel (its tile height),
            // so re-tiling rebuilds the kernels, not just the config.
            if autotune {
                if let Some(family) = cascades[0].shape_family() {
                    let bh = shapes.choose(GeomClass::of(w, h), &family).block.y;
                    if bh != CascadeKernel::BLOCK {
                        cascades = cascades.into_iter().map(|k| k.with_block_h(bh)).collect();
                    }
                }
            }
            if let Err(e) = { let cfg = cascades[0].config(); gpu.launch_batched(cascades, cfg, stream) } {
                return fail(gpu, "cascade_eval", level, e);
            }

            let displays: Vec<_> = slots
                .iter()
                .map(|slot| DisplayKernel {
                    depth: slot[level].depth,
                    hits: slot[level].hits,
                    width: w,
                    height: h,
                    required_depth: self.cascade.depth(),
                })
                .collect();
            if let Err(e) = { let cfg = displays[0].config(); gpu.launch_batched(displays, cfg, stream) } {
                return fail(gpu, "display", level, e);
            }
        }

        let timeline = gpu.synchronize();

        let mut batch_outputs = Vec::with_capacity(frames.len());
        for slot in slots {
            let mut outputs = Vec::with_capacity(plan.len());
            for (level, &(w, h)) in plan.iter().enumerate() {
                outputs.push(ScaleOutput {
                    level,
                    width: w,
                    height: h,
                    scale: self.scale_factor.powi(level as i32),
                    depth: gpu.mem.download(slot[level].depth),
                    score: gpu.mem.download(slot[level].score),
                    hits: gpu.mem.download(slot[level].hits),
                });
            }
            batch_outputs.push(outputs);
        }
        Ok((batch_outputs, timeline))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode};
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};
    use fd_imgproc::IntegralImage;

    fn simple_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("t", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 4096, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn test_frame() -> GrayImage {
        // A 96x72 frame with one strong edge pattern.
        GrayImage::from_fn(96, 72, |x, y| {
            if (20..32).contains(&x) && (10..34).contains(&y) {
                10.0
            } else if (32..44).contains(&x) && (10..34).contains(&y) {
                250.0
            } else {
                100.0
            }
        })
    }

    #[test]
    fn pipeline_levels_match_host_reference() {
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let frame = test_frame();
        let (outputs, timeline) = p.run_frame(&frame).unwrap();
        assert!(outputs.len() >= 4, "96x72 at 1.25 should give several levels");
        assert!(timeline.span_us() > 0.0);

        // Reference: host-side scale+filter+integral+eval per level.
        for out in &outputs {
            let scaled = if out.level == 0 {
                frame.clone()
            } else {
                fd_imgproc::resize::resize_bilinear(&frame, out.width, out.height)
            };
            let filtered = fd_imgproc::filter::antialias_3tap(&scaled);
            let ii = IntegralImage::from_gray(&filtered);
            let cq = p.cascade().clone();
            for oy in (0..=out.height - 24).step_by(7) {
                for ox in (0..=out.width - 24).step_by(7) {
                    let r = cq.eval_window(&ii, ox, oy);
                    assert_eq!(
                        out.depth[oy * out.width + ox],
                        r.depth,
                        "level {} window ({ox},{oy})",
                        out.level
                    );
                }
            }
        }
    }

    #[test]
    fn serial_and_concurrent_agree_functionally() {
        let frame = test_frame();
        let run = |mode| {
            let gpu = Gpu::new(DeviceSpec::gtx470(), mode);
            let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
            let (outputs, timeline) = p.run_frame(&frame).unwrap();
            (outputs, timeline)
        };
        let (a, ta) = run(ExecMode::Serial);
        let (b, tb) = run(ExecMode::Concurrent);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.depth, y.depth);
            assert_eq!(x.hits, y.hits);
        }
        // Concurrency can only help.
        assert!(
            tb.span_us() <= ta.span_us() * 1.001,
            "concurrent {} vs serial {}",
            tb.span_us(),
            ta.span_us()
        );
    }

    #[test]
    fn hits_are_thresholded_depths() {
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let (outputs, _) = p.run_frame(&test_frame()).unwrap();
        let req = p.cascade().depth();
        for out in &outputs {
            for (d, h) in out.depth.iter().zip(&out.hits) {
                assert_eq!(*h, (*d >= req) as u32);
            }
        }
    }

    #[test]
    fn memory_is_reclaimed_between_frames() {
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let frame = test_frame();
        assert_eq!(p.pooled_bytes(), 0, "no pool before the first frame");
        let _ = p.run_frame(&frame);
        let live_after_first = p.gpu.mem.live_bytes();
        let allocs_after_first = p.gpu.mem.alloc_count();
        assert_eq!(p.pooled_bytes(), live_after_first, "pool owns all live memory");
        for _ in 0..3 {
            let _ = p.run_frame(&frame);
        }
        assert_eq!(p.gpu.mem.live_bytes(), live_after_first, "no leak across frames");
        assert_eq!(
            p.gpu.mem.alloc_count(),
            allocs_after_first,
            "steady-state frames must be allocation-free"
        );
        p.release_pool();
        assert_eq!(p.gpu.mem.live_bytes(), 0, "release_pool returns everything");
        assert_eq!(p.pooled_bytes(), 0);
    }

    #[test]
    fn batch_of_one_is_bit_identical_to_run_frame() {
        let frame = test_frame();
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let (single, ts) = p.run_frame(&frame).unwrap();
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let plan = p.plan_for(&frame).unwrap();
        let (batch, tb) = p.run_batch_with_plan(&[&frame], &plan).unwrap();
        assert_eq!(batch.len(), 1);
        for (a, b) in single.iter().zip(&batch[0]) {
            assert_eq!(a.depth, b.depth);
            assert_eq!(
                a.score.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.score.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(a.hits, b.hits);
        }
        assert_eq!(ts.span_us().to_bits(), tb.span_us().to_bits(), "same timeline");
    }

    #[test]
    fn batch_matches_per_frame_runs_functionally() {
        let frames: Vec<GrayImage> = (0..3)
            .map(|k| {
                GrayImage::from_fn(96, 72, |x, y| {
                    let (x, y) = (x + 5 * k, y + 3 * k);
                    if (20..32).contains(&x) && (10..34).contains(&y) {
                        10.0
                    } else if (32..44).contains(&x) && (10..34).contains(&y) {
                        250.0
                    } else {
                        100.0
                    }
                })
            })
            .collect();
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let singles: Vec<_> = frames.iter().map(|f| p.run_frame(f).unwrap().0).collect();

        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let plan = p.plan_for(&frames[0]).unwrap();
        let refs: Vec<&GrayImage> = frames.iter().collect();
        let (batch, _) = p.run_batch_with_plan(&refs, &plan).unwrap();

        assert_eq!(batch.len(), singles.len());
        for (single, batched) in singles.iter().zip(&batch) {
            for (a, b) in single.iter().zip(batched) {
                assert_eq!(a.depth, b.depth);
                assert_eq!(a.hits, b.hits);
            }
        }
    }

    #[test]
    fn batched_launches_cut_the_per_request_latency() {
        let frame = test_frame();
        let refs4 = [&frame, &frame, &frame, &frame];
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let plan = p.plan_for(&frame).unwrap();
        let (_, t1) = p.run_batch_with_plan(&[&frame], &plan).unwrap();
        let (_, t4) = p.run_batch_with_plan(&refs4, &plan).unwrap();
        assert!(
            t4.span_us() < 4.0 * t1.span_us(),
            "a 4-batch must beat 4 sequential frames: {} vs 4x{}",
            t4.span_us(),
            t1.span_us()
        );
    }

    #[test]
    fn batch_slots_are_pooled_and_steady_state_allocation_free() {
        let frame = test_frame();
        let refs: Vec<&GrayImage> = vec![&frame; 4];
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let plan = p.plan_for(&frame).unwrap();
        let _ = p.run_batch_with_plan(&refs, &plan).unwrap();
        let live = p.gpu.mem.live_bytes();
        let allocs = p.gpu.mem.alloc_count();
        assert_eq!(p.pooled_bytes(), live, "pool owns all live memory");
        for _ in 0..3 {
            let _ = p.run_batch_with_plan(&refs, &plan).unwrap();
            // Smaller batches reuse a prefix of the slots.
            let _ = p.run_frame(&frame).unwrap();
        }
        assert_eq!(p.gpu.mem.alloc_count(), allocs, "steady-state batches are allocation-free");
        assert_eq!(p.gpu.mem.live_bytes(), live);
        p.release_pool();
        assert_eq!(p.gpu.mem.live_bytes(), 0);
    }

    #[test]
    fn batch_rejects_mixed_geometries_and_empty_batches() {
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let a = test_frame();
        let b = GrayImage::from_fn(64, 48, |x, _| x as f32);
        let plan = p.plan_for(&a).unwrap();
        assert!(matches!(
            p.run_batch_with_plan(&[&a, &b], &plan),
            Err(DetectorError::InvalidConfig { .. })
        ));
        assert!(matches!(
            p.run_batch_with_plan(&[], &plan),
            Err(DetectorError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn fused_frames_are_bit_identical_and_pay_fewer_launches() {
        let frame = test_frame();
        let run = |fusion: bool| {
            let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
            p.set_fusion(fusion);
            let (outputs, t) = p.run_frame(&frame).unwrap();
            let launches = p.gpu.profiler().traces().len();
            (outputs, t.span_us(), launches)
        };
        let (unfused, span_u, n_u) = run(false);
        let (fused, span_f, n_f) = run(true);
        for (a, b) in unfused.iter().zip(&fused) {
            assert_eq!(a.depth, b.depth, "level {}", a.level);
            assert_eq!(
                a.score.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                b.score.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "level {}",
                a.level
            );
            assert_eq!(a.hits, b.hits, "level {}", a.level);
        }
        // 8 launches per level unfused; fusion folds scale..transpose
        // into two, leaving chain A, chain B, cascade, display.
        assert_eq!(n_u % 8, 0);
        assert_eq!(n_f % 4, 0);
        assert_eq!(n_u / 8, n_f / 4, "same level count");
        assert!(
            span_f < span_u,
            "fusion must shorten the frame: fused {span_f} vs unfused {span_u}"
        );
    }

    #[test]
    fn fused_batches_match_unfused_batches() {
        let frame = test_frame();
        let refs: Vec<&GrayImage> = vec![&frame; 3];
        let run = |fusion: bool| {
            let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
            p.set_fusion(fusion);
            let plan = p.plan_for(&frame).unwrap();
            p.run_batch_with_plan(&refs, &plan).unwrap()
        };
        let (unfused, tu) = run(false);
        let (fused, tf) = run(true);
        for (uf, ff) in unfused.iter().zip(&fused) {
            for (a, b) in uf.iter().zip(ff) {
                assert_eq!(a.depth, b.depth);
                assert_eq!(a.hits, b.hits);
            }
        }
        assert!(tf.span_us() < tu.span_us(), "{} vs {}", tf.span_us(), tu.span_us());
    }

    #[test]
    fn fusion_credits_intermediate_traffic() {
        let frame = test_frame();
        let counters = |fusion: bool| {
            let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
            p.set_fusion(fusion);
            // Byte-for-byte ledger comparison needs both runs on the
            // default shapes: re-tiling changes halo traffic.
            p.set_autotune(false);
            let _ = p.run_frame(&frame).unwrap();
            let mut total = fd_gpu::KernelCounters::default();
            for prof in p.gpu.profiler().kernels().values() {
                total.add(&prof.counters);
            }
            total
        };
        let u = counters(false);
        let f = counters(true);
        assert_eq!(u.fused_bytes(), 0, "unfused frames have no fused traffic");
        assert!(f.fused_bytes() > 0, "fused frames credit intermediate traffic");
        assert_eq!(
            u.global_bytes() - f.global_bytes(),
            f.fused_bytes(),
            "every avoided global byte is accounted as fused"
        );
    }

    #[test]
    fn autotuned_frames_are_byte_identical_to_fixed_shapes() {
        let frame = test_frame();
        let run = |autotune: bool, fusion: bool| {
            let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
            p.set_autotune(autotune);
            p.set_fusion(fusion);
            let (outputs, _) = p.run_frame(&frame).unwrap();
            (outputs, p.tuned_classes())
        };
        let (base, n_off) = run(false, false);
        assert_eq!(n_off, 0, "autotune off must not touch the shape cache");
        for fusion in [false, true] {
            let (tuned, n_on) = run(true, fusion);
            assert!(n_on > 0, "autotune must resolve at least one class");
            for (a, b) in base.iter().zip(&tuned) {
                assert_eq!(a.depth, b.depth, "level {}", a.level);
                assert_eq!(
                    a.score.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    b.score.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "level {}",
                    a.level
                );
                assert_eq!(a.hits, b.hits, "level {}", a.level);
            }
        }
    }

    #[test]
    fn pool_rebuilds_on_frame_geometry_change() {
        let gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let mut p = FramePipeline::new(gpu, &simple_cascade(), 1.25);
        let (a, _) = p.run_frame(&test_frame()).unwrap();
        let pool_96x72 = p.pooled_bytes();
        let allocs = p.gpu.mem.alloc_count();

        // A differently sized frame frees the old pool and builds a new one.
        let small = GrayImage::from_fn(64, 48, |x, _| (x * 3) as f32);
        let (b, _) = p.run_frame(&small).unwrap();
        assert!(p.gpu.mem.alloc_count() > allocs, "geometry change reallocates");
        assert_eq!(p.gpu.mem.live_bytes(), p.pooled_bytes(), "old pool was freed");
        assert!(p.pooled_bytes() < pool_96x72);
        assert!(b.len() < a.len(), "smaller frame has fewer levels");

        // Returning to the original geometry rebuilds and still matches the
        // first run's results exactly.
        let (c, _) = p.run_frame(&test_frame()).unwrap();
        assert_eq!(a.len(), c.len());
        for (x, y) in a.iter().zip(&c) {
            assert_eq!(x.depth, y.depth);
            assert_eq!(x.score, y.score);
            assert_eq!(x.hits, y.hits);
        }
    }
}
