//! Multi-GPU scale parallelism — the related-work baseline of Hefenbrock
//! et al. (FCCM 2010), discussed in the paper's §II:
//!
//! "They proposed a multi-GPU solution where each detection window is
//! evaluated in a different thread, and each window scale computed in
//! parallel in a different GPU."
//!
//! Each pyramid level runs its full kernel chain on its *own* simulated
//! device (round-robin across `n_gpus`), every device receiving a copy of
//! the frame over PCIe. The frame latency is the slowest device's span
//! plus the broadcast transfer — demonstrating why the paper's
//! single-GPU concurrent-kernel approach wins at equal silicon: scale 0
//! dominates one device while the others idle, and every extra GPU pays
//! the raw-frame upload the on-die decoder avoids.

use fd_gpu::pcie::PcieModel;
use fd_gpu::{DeviceSpec, ExecMode, Gpu};
use fd_haar::Cascade;
use fd_imgproc::{GrayImage, Pyramid};

use crate::error::DetectorError;
use crate::pipeline::FramePipeline;

/// Result of one multi-GPU frame.
#[derive(Debug, Clone)]
pub struct MultiGpuFrame {
    /// Simulated span per device, milliseconds (compute only).
    pub per_gpu_ms: Vec<f64>,
    /// Raw-frame broadcast time per device, milliseconds.
    pub upload_ms: f64,
    /// End-to-end frame latency: upload + slowest device.
    pub frame_ms: f64,
    /// Total raw detections across devices.
    pub raw_detections: usize,
}

/// Run one frame with levels distributed round-robin over `n_gpus`
/// devices (Hefenbrock-style). Every device runs its levels' kernel
/// chains concurrently within itself.
pub fn detect_multi_gpu(
    cascade: &Cascade,
    frame: &GrayImage,
    n_gpus: usize,
    spec: &DeviceSpec,
    pcie: &PcieModel,
    scale_factor: f64,
) -> Result<MultiGpuFrame, DetectorError> {
    if n_gpus == 0 {
        return Err(DetectorError::InvalidConfig { reason: "n_gpus must be at least 1" });
    }
    let window = cascade.window as usize;
    let plan = Pyramid::plan(frame.width(), frame.height(), scale_factor, window);

    // Partition levels round-robin (level i -> GPU i % n). The devices
    // are independent simulators, so they run on one host thread each —
    // the host-side analogue of the real setup's per-GPU driver threads.
    // Results are aggregated in device order, so the output (and the
    // first error surfaced) is identical to the sequential loop.
    let device_results: Vec<Result<(f64, usize), DetectorError>> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n_gpus)
                .map(|g| {
                    let plan = &plan;
                    scope.spawn(move || -> Result<(f64, usize), DetectorError> {
                        let levels: Vec<usize> =
                            (0..plan.len()).filter(|l| l % n_gpus == g).collect();
                        if levels.is_empty() {
                            return Ok((0.0, 0));
                        }
                        // Each device runs a pipeline restricted to its
                        // levels. The restriction is emulated by rescaling
                        // the frame to the largest assigned level and
                        // running a pyramid whose plan matches the assigned
                        // levels' dimensions; level spacing within a device
                        // is `factor^n_gpus`.
                        let device_factor = scale_factor.powi(n_gpus as i32);
                        let top = plan[levels[0]];
                        let scaled = if top == (frame.width(), frame.height()) {
                            frame.clone()
                        } else {
                            fd_imgproc::resize::resize_bilinear(frame, top.0, top.1)
                        };
                        if scaled.width() < window || scaled.height() < window {
                            return Ok((0.0, 0));
                        }
                        let gpu = Gpu::new(spec.clone(), ExecMode::Concurrent);
                        let mut pipeline = FramePipeline::try_new(gpu, cascade, device_factor)?;
                        let (outputs, timeline) = pipeline.run_frame(&scaled)?;
                        let hits = outputs
                            .iter()
                            .map(|o| o.hits.iter().filter(|&&h| h != 0).count())
                            .sum::<usize>();
                        Ok((timeline.span_us() / 1000.0, hits))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("device thread panicked"))
                .collect()
        });
    let mut per_gpu_ms = Vec::with_capacity(n_gpus);
    let mut raw_detections = 0usize;
    for r in device_results {
        let (ms, hits) = r?;
        per_gpu_ms.push(ms);
        raw_detections += hits;
    }

    // Every device receives the raw frame (no on-die decoder on the
    // secondary GPUs): sequential DMA broadcasts on one host link.
    let upload_ms =
        n_gpus as f64 * pcie.h2d_us(frame.width() * frame.height() * 3 / 2) / 1000.0;
    let slowest = per_gpu_ms.iter().cloned().fold(0.0f64, f64::max);
    Ok(MultiGpuFrame {
        per_gpu_ms,
        upload_ms,
        frame_ms: upload_ms + slowest,
        raw_detections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};

    fn cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("t", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn frame() -> GrayImage {
        GrayImage::from_fn(192, 108, |x, y| ((x * 13 + y * 7) % 255) as f32)
    }

    #[test]
    fn levels_are_partitioned_across_devices() -> Result<(), DetectorError> {
        let r = detect_multi_gpu(
            &cascade(),
            &frame(),
            3,
            &DeviceSpec::gtx470(),
            &PcieModel::pcie2_x16(),
            1.25,
        )?;
        assert_eq!(r.per_gpu_ms.len(), 3);
        // GPU 0 holds level 0 and dominates.
        assert!(r.per_gpu_ms[0] >= r.per_gpu_ms[1]);
        assert!(r.per_gpu_ms[0] >= r.per_gpu_ms[2]);
        assert!(r.frame_ms > r.per_gpu_ms[0], "upload must add latency");
        Ok(())
    }

    #[test]
    fn single_gpu_case_matches_plain_pipeline_shape() -> Result<(), DetectorError> {
        let r = detect_multi_gpu(
            &cascade(),
            &frame(),
            1,
            &DeviceSpec::gtx470(),
            &PcieModel::pcie2_x16(),
            1.25,
        )?;
        assert_eq!(r.per_gpu_ms.len(), 1);
        assert!(r.per_gpu_ms[0] > 0.0);
        Ok(())
    }

    #[test]
    fn adding_gpus_hits_diminishing_returns() -> Result<(), DetectorError> {
        // The scale-0 chain pins GPU 0: going 1 -> 4 GPUs cannot yield a
        // 4x frame-latency improvement (Hefenbrock's imbalance problem).
        let one = detect_multi_gpu(
            &cascade(),
            &frame(),
            1,
            &DeviceSpec::gtx470(),
            &PcieModel::pcie2_x16(),
            1.25,
        )?;
        let four = detect_multi_gpu(
            &cascade(),
            &frame(),
            4,
            &DeviceSpec::gtx470(),
            &PcieModel::pcie2_x16(),
            1.25,
        )?;
        let speedup = one.frame_ms / four.frame_ms;
        assert!(speedup < 3.0, "speedup {speedup:.2} should be far below 4x");
        Ok(())
    }
}
