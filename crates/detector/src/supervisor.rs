//! Multi-stream supervision: circuit breaking, checkpoint/resume and
//! admission control over concurrent [`VideoDetector`] sessions.
//!
//! A deployment of the paper's detector serves many video streams from
//! one device. The supervisor is the layer that keeps that fleet healthy
//! without sacrificing the reproduction's determinism contract:
//!
//! * **Health state machine** — each session moves through
//!   `Healthy -> Degraded -> Quarantined -> Restarting` driven by its
//!   [`FrameOutcome`] history. A circuit breaker counts *consecutive*
//!   unrecoverable launch failures (timeouts, retry exhaustion); at
//!   [`SupervisorConfig::breaker_threshold`] the session is quarantined
//!   for a deterministic number of supervision ticks — simulated cycles,
//!   never wall clock — with its device cooled down
//!   ([`FaceDetector::cool_down`]). On expiry the session goes
//!   half-open: a single-frame probe either restores it or re-arms the
//!   quarantine.
//! * **Checkpoint/resume** — [`SessionCheckpoint`] captures everything
//!   mutable about a session (stream stats, shed level, deadline window,
//!   breaker state, the device's [`fd_gpu::FaultCursor`]) in a
//!   line-oriented text format with bit-exact `f64` encoding. Killing a
//!   session at an arbitrary frame and resuming from its checkpoint
//!   yields [`StreamStats`] bit-identical to the uninterrupted run.
//! * **Admission control** — sessions are admitted against a device
//!   memory budget using the pipeline's allocation projection
//!   ([`FaceDetector::projected_device_bytes`]); per-session frame queues
//!   are bounded, and overflow surfaces as backpressure counts in
//!   [`SupervisorStats`] instead of unbounded growth.
//!
//! Scheduling is a deterministic round-robin: [`StreamSupervisor::tick`]
//! visits sessions in admission order and processes at most one queued
//! frame each, so a run's interleaving is a pure function of its inputs.

use std::collections::VecDeque;
use std::fmt;

use fd_gpu::FaultCursor;
use fd_haar::Cascade;
use fd_video::DecodedFrame;

use crate::detector::DetectorConfig;
use crate::error::DetectorError;
use crate::stream_detector::{
    FrameOutcome, FrameReport, RecoveryPolicy, RecoverySnapshot, SkipReason, StreamStats,
    VideoDetector,
};

/// Stable identifier of a supervised session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub usize);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Where a session sits in the supervision state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Last processed frame completed at full quality.
    Healthy,
    /// Producing results under degraded conditions (retries, shed scales,
    /// corrupt input, non-breaker skips) or accumulating breaker faults
    /// below the trip threshold.
    Degraded,
    /// Circuit breaker tripped; no frames run until `until_tick`.
    /// Queued frames are held, not dropped.
    Quarantined { until_tick: u64 },
    /// Quarantine expired; the next queued frame is a half-open probe.
    Restarting,
}

/// Supervisor-wide policy knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Device bytes the whole fleet may hold (projected at admission).
    pub memory_budget_bytes: usize,
    /// Bounded depth of each session's frame queue.
    pub frame_queue_depth: usize,
    /// Consecutive unrecoverable launch failures that trip the breaker.
    pub breaker_threshold: u32,
    /// Quarantine length in supervision ticks (simulated cycles).
    pub cooldown_ticks: u64,
    /// Hard cap on concurrently supervised sessions.
    pub max_sessions: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            // A GTX470 carries 1280 MB; leave headroom for decode surfaces.
            memory_budget_bytes: 1024 << 20,
            frame_queue_depth: 8,
            breaker_threshold: 3,
            cooldown_ticks: 8,
            max_sessions: 16,
        }
    }
}

/// Fleet-level counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Sessions admitted (including resumed ones).
    pub admitted: usize,
    /// Sessions rebuilt from a [`SessionCheckpoint`].
    pub resumed: usize,
    /// Admissions rejected for exceeding the memory budget.
    pub rejected_memory: usize,
    /// Admissions rejected for exceeding `max_sessions`.
    pub rejected_capacity: usize,
    /// Frames accepted into session queues.
    pub frames_enqueued: usize,
    /// Frames refused because a session queue was full.
    pub backpressure_drops: usize,
    /// Frames run through detection.
    pub frames_processed: usize,
    /// Circuit-breaker trips across the fleet.
    pub breaker_trips: usize,
    /// Session-ticks spent waiting out a quarantine.
    pub quarantined_ticks: u64,
    /// Half-open probes that restored a session.
    pub probes_succeeded: usize,
    /// Half-open probes that re-armed the quarantine.
    pub probes_failed: usize,
    /// Supervision ticks elapsed.
    pub ticks: u64,
}

/// Typed supervisor failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SupervisorError {
    /// Admitting the session would exceed the device memory budget.
    MemoryBudget { requested: usize, in_use: usize, budget: usize },
    /// The fleet is at `max_sessions`.
    Capacity { max_sessions: usize },
    /// No session with this id (never admitted, or already closed).
    UnknownSession { session: SessionId },
    /// Building the session's detector failed (invalid cascade, config).
    Detector(DetectorError),
    /// A checkpoint failed to parse.
    Checkpoint(CheckpointError),
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MemoryBudget { requested, in_use, budget } => write!(
                f,
                "admission would need {requested} device bytes with {in_use} of {budget} in use"
            ),
            Self::Capacity { max_sessions } => {
                write!(f, "fleet already holds the maximum of {max_sessions} sessions")
            }
            Self::UnknownSession { session } => write!(f, "unknown {session}"),
            Self::Detector(e) => write!(f, "session construction failed: {e}"),
            Self::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
        }
    }
}

impl std::error::Error for SupervisorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Detector(e) => Some(e),
            Self::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

/// Health as stored in a checkpoint: quarantine is expressed as ticks
/// *remaining*, since absolute tick numbers are meaningless to the
/// supervisor that resumes the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointHealth {
    Healthy,
    Degraded,
    Restarting,
    Quarantined { remaining_ticks: u64 },
}

/// Error parsing a [`SessionCheckpoint`] text blob.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CheckpointError {}

/// Everything mutable about a session, sufficient — together with the
/// construction inputs (cascade, [`DetectorConfig`], playback fps) — to
/// resume it bit-identically.
///
/// `next_frame` is the number of frames the session has *accounted*
/// (every frame fed to it yields exactly one report); a caller feeding a
/// monotone stream seeks its decoder here on resume. Frames still queued
/// at checkpoint time are not captured — re-feed them from `next_frame`.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionCheckpoint {
    pub session: SessionId,
    /// Stream cursor: index of the next frame to feed.
    pub next_frame: usize,
    /// Admission geometry (frame width, height).
    pub width: usize,
    pub height: usize,
    pub health: CheckpointHealth,
    /// Consecutive breaker faults accumulated below the trip threshold.
    pub consecutive_faults: u32,
    /// Position in the device's deterministic fault-draw sequence.
    pub fault_cursor: FaultCursor,
    pub policy: RecoveryPolicy,
    /// The detector's mutable streaming state (stats, shed, window).
    pub snapshot: RecoverySnapshot,
}

/// Bit-exact `f64` encoding for the checkpoint format.
fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(tok: &str, line: usize) -> Result<f64, CheckpointError> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|_| CheckpointError { line, message: format!("bad f64 bits `{tok}`") })
}

fn parse_num<T: std::str::FromStr>(tok: &str, line: usize, what: &str) -> Result<T, CheckpointError> {
    tok.parse().map_err(|_| CheckpointError { line, message: format!("bad {what} `{tok}`") })
}

impl SessionCheckpoint {
    /// Render the checkpoint as its line-oriented text format. All `f64`
    /// fields are written as hex bit patterns, so a round-trip is
    /// bit-exact.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("supervisor-checkpoint v1\n");
        out.push_str(&format!("session {}\n", self.session.0));
        out.push_str(&format!("geometry {} {}\n", self.width, self.height));
        out.push_str(&format!("next_frame {}\n", self.next_frame));
        match self.health {
            CheckpointHealth::Healthy => out.push_str("health healthy\n"),
            CheckpointHealth::Degraded => out.push_str("health degraded\n"),
            CheckpointHealth::Restarting => out.push_str("health restarting\n"),
            CheckpointHealth::Quarantined { remaining_ticks } => {
                out.push_str(&format!("health quarantined {remaining_ticks}\n"));
            }
        }
        out.push_str(&format!("consecutive_faults {}\n", self.consecutive_faults));
        out.push_str(&format!(
            "fault_cursor {} {}\n",
            self.fault_cursor.launch_attempts, self.fault_cursor.copy_draws
        ));
        let p = &self.policy;
        out.push_str(&format!(
            "policy {} {} {} {} {} {}\n",
            p.max_retries,
            f64_hex(p.backoff_base_ms),
            p.max_shed_levels,
            p.deadline_window,
            f64_hex(p.shed_miss_fraction),
            f64_hex(p.restore_headroom_fraction),
        ));
        let s = &self.snapshot.stats;
        out.push_str(&format!(
            "stats {} {} {} {} {} {} {} {} {} {} {} {}\n",
            s.frames,
            f64_hex(s.total_decode_ms),
            f64_hex(s.total_detect_ms),
            f64_hex(s.total_period_ms),
            f64_hex(s.max_detect_ms),
            s.total_detections,
            s.ok_frames,
            s.degraded_frames,
            s.skipped_frames,
            s.retries,
            f64_hex(s.total_backoff_ms),
            s.shed_frames,
        ));
        out.push_str(&format!("shed {}\n", self.snapshot.shed));
        out.push_str(&format!("missed_deadlines {}\n", self.snapshot.missed_deadlines));
        out.push_str(&format!("window {}", self.snapshot.window.len()));
        for v in &self.snapshot.window {
            out.push(' ');
            out.push_str(&f64_hex(*v));
        }
        out.push('\n');
        out
    }

    /// Parse the text format back into a checkpoint.
    pub fn from_text(text: &str) -> Result<Self, CheckpointError> {
        let err = |line: usize, m: &str| CheckpointError { line, message: m.to_string() };
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
        let mut field = |key: &str| -> Result<(usize, Vec<String>), CheckpointError> {
            let (n, l) = lines
                .next()
                .ok_or_else(|| err(0, &format!("unexpected end of input (expected `{key}`)")))?;
            let toks: Vec<String> = l.split_whitespace().map(str::to_string).collect();
            if toks[0] != key {
                return Err(err(n, &format!("expected `{key}`, found `{}`", toks[0])));
            }
            Ok((n, toks))
        };

        let (n, head) = field("supervisor-checkpoint")?;
        if head.get(1).map(String::as_str) != Some("v1") {
            return Err(err(n, "unsupported checkpoint version"));
        }
        let (n, toks) = field("session")?;
        let session = SessionId(parse_num(&toks[1], n, "session id")?);
        let (n, toks) = field("geometry")?;
        if toks.len() != 3 {
            return Err(err(n, "geometry needs: geometry <width> <height>"));
        }
        let width = parse_num(&toks[1], n, "width")?;
        let height = parse_num(&toks[2], n, "height")?;
        let (n, toks) = field("next_frame")?;
        let next_frame = parse_num(&toks[1], n, "frame cursor")?;
        let (n, toks) = field("health")?;
        let health = match toks.get(1).map(String::as_str) {
            Some("healthy") => CheckpointHealth::Healthy,
            Some("degraded") => CheckpointHealth::Degraded,
            Some("restarting") => CheckpointHealth::Restarting,
            Some("quarantined") => CheckpointHealth::Quarantined {
                remaining_ticks: parse_num(
                    toks.get(2).ok_or_else(|| err(n, "quarantined needs remaining ticks"))?,
                    n,
                    "remaining ticks",
                )?,
            },
            _ => return Err(err(n, "unknown health state")),
        };
        let (n, toks) = field("consecutive_faults")?;
        let consecutive_faults = parse_num(&toks[1], n, "fault count")?;
        let (n, toks) = field("fault_cursor")?;
        if toks.len() != 3 {
            return Err(err(n, "fault_cursor needs: fault_cursor <launches> <copies>"));
        }
        let fault_cursor = FaultCursor {
            launch_attempts: parse_num(&toks[1], n, "launch cursor")?,
            copy_draws: parse_num(&toks[2], n, "copy cursor")?,
        };
        let (n, toks) = field("policy")?;
        if toks.len() != 7 {
            return Err(err(n, "policy needs 6 fields"));
        }
        let policy = RecoveryPolicy {
            max_retries: parse_num(&toks[1], n, "max_retries")?,
            backoff_base_ms: parse_f64_hex(&toks[2], n)?,
            max_shed_levels: parse_num(&toks[3], n, "max_shed_levels")?,
            deadline_window: parse_num(&toks[4], n, "deadline_window")?,
            shed_miss_fraction: parse_f64_hex(&toks[5], n)?,
            restore_headroom_fraction: parse_f64_hex(&toks[6], n)?,
        };
        let (n, toks) = field("stats")?;
        if toks.len() != 13 {
            return Err(err(n, "stats needs 12 fields"));
        }
        let stats = StreamStats {
            frames: parse_num(&toks[1], n, "frames")?,
            total_decode_ms: parse_f64_hex(&toks[2], n)?,
            total_detect_ms: parse_f64_hex(&toks[3], n)?,
            total_period_ms: parse_f64_hex(&toks[4], n)?,
            max_detect_ms: parse_f64_hex(&toks[5], n)?,
            total_detections: parse_num(&toks[6], n, "detections")?,
            ok_frames: parse_num(&toks[7], n, "ok frames")?,
            degraded_frames: parse_num(&toks[8], n, "degraded frames")?,
            skipped_frames: parse_num(&toks[9], n, "skipped frames")?,
            retries: parse_num(&toks[10], n, "retries")?,
            total_backoff_ms: parse_f64_hex(&toks[11], n)?,
            shed_frames: parse_num(&toks[12], n, "shed frames")?,
        };
        let (n, toks) = field("shed")?;
        let shed = parse_num(&toks[1], n, "shed")?;
        let (n, toks) = field("missed_deadlines")?;
        let missed_deadlines = parse_num(&toks[1], n, "missed deadlines")?;
        let (n, toks) = field("window")?;
        let len: usize = parse_num(&toks[1], n, "window length")?;
        if toks.len() != 2 + len {
            return Err(err(n, "window length does not match its entries"));
        }
        let window = toks[2..]
            .iter()
            .map(|t| parse_f64_hex(t, n))
            .collect::<Result<Vec<f64>, _>>()?;
        Ok(Self {
            session,
            next_frame,
            width,
            height,
            health,
            consecutive_faults,
            fault_cursor,
            policy,
            snapshot: RecoverySnapshot { stats, shed, missed_deadlines, window },
        })
    }
}

/// One supervised stream.
struct Session {
    id: SessionId,
    vd: VideoDetector,
    width: usize,
    height: usize,
    health: HealthState,
    /// Consecutive breaker faults since the last clean frame.
    consecutive: u32,
    queue: VecDeque<DecodedFrame>,
    /// Device bytes charged against the budget at admission.
    charged_bytes: usize,
}

/// Supervisor over N concurrent [`VideoDetector`] sessions (module docs).
pub struct StreamSupervisor {
    config: SupervisorConfig,
    sessions: Vec<Session>,
    next_id: usize,
    tick: u64,
    bytes_in_use: usize,
    stats: SupervisorStats,
}

impl StreamSupervisor {
    pub fn new(config: SupervisorConfig) -> Self {
        Self {
            config,
            sessions: Vec::new(),
            next_id: 0,
            tick: 0,
            bytes_in_use: 0,
            stats: SupervisorStats::default(),
        }
    }

    /// Admit a new session for a `width x height` stream, charging its
    /// projected steady-state device footprint against the memory budget
    /// *before* any frame runs. Rejections are typed and counted.
    pub fn admit(
        &mut self,
        cascade: &Cascade,
        config: DetectorConfig,
        playback_fps: f64,
        policy: RecoveryPolicy,
        width: usize,
        height: usize,
    ) -> Result<SessionId, SupervisorError> {
        let vd = self.build_detector(cascade, config, playback_fps, policy)?;
        self.install(vd, width, height, HealthState::Healthy, 0)
    }

    /// Rebuild a session from a checkpoint. The caller supplies the same
    /// construction inputs (cascade, config, fps) used originally; the
    /// checkpoint restores the mutable state and the fault cursor, so the
    /// resumed session continues the fault sequence and the stream stats
    /// bit-identically. Device `FaultStats` restart from zero — only the
    /// *draw sequence* position is part of the determinism contract.
    pub fn resume(
        &mut self,
        ckpt: &SessionCheckpoint,
        cascade: &Cascade,
        config: DetectorConfig,
        playback_fps: f64,
    ) -> Result<SessionId, SupervisorError> {
        let mut vd =
            self.build_detector(cascade, config, playback_fps, ckpt.policy.clone())?;
        vd.restore(&ckpt.snapshot);
        vd.detector_mut().seek_fault_cursor(ckpt.fault_cursor);
        let health = match ckpt.health {
            CheckpointHealth::Healthy => HealthState::Healthy,
            CheckpointHealth::Degraded => HealthState::Degraded,
            CheckpointHealth::Restarting => HealthState::Restarting,
            CheckpointHealth::Quarantined { remaining_ticks } => {
                HealthState::Quarantined { until_tick: self.tick + remaining_ticks }
            }
        };
        let id = self.install(vd, ckpt.width, ckpt.height, health, ckpt.consecutive_faults)?;
        self.stats.resumed += 1;
        Ok(id)
    }

    fn build_detector(
        &self,
        cascade: &Cascade,
        config: DetectorConfig,
        playback_fps: f64,
        policy: RecoveryPolicy,
    ) -> Result<VideoDetector, SupervisorError> {
        Ok(VideoDetector::new(cascade, config, playback_fps)
            .map_err(SupervisorError::Detector)?
            .with_policy(policy))
    }

    fn install(
        &mut self,
        vd: VideoDetector,
        width: usize,
        height: usize,
        health: HealthState,
        consecutive: u32,
    ) -> Result<SessionId, SupervisorError> {
        if self.sessions.len() >= self.config.max_sessions {
            self.stats.rejected_capacity += 1;
            return Err(SupervisorError::Capacity { max_sessions: self.config.max_sessions });
        }
        let projected = vd
            .detector()
            .projected_device_bytes(width, height)
            .map_err(SupervisorError::Detector)?;
        if self.bytes_in_use + projected > self.config.memory_budget_bytes {
            self.stats.rejected_memory += 1;
            return Err(SupervisorError::MemoryBudget {
                requested: projected,
                in_use: self.bytes_in_use,
                budget: self.config.memory_budget_bytes,
            });
        }
        let id = SessionId(self.next_id);
        self.next_id += 1;
        self.bytes_in_use += projected;
        self.stats.admitted += 1;
        self.sessions.push(Session {
            id,
            vd,
            width,
            height,
            health,
            consecutive,
            queue: VecDeque::new(),
            charged_bytes: projected,
        });
        Ok(id)
    }

    /// Offer a frame to a session's bounded queue. Returns `Ok(false)`
    /// when the queue is full — the frame is refused and counted as a
    /// backpressure drop, never silently buffered without bound.
    pub fn enqueue_frame(
        &mut self,
        id: SessionId,
        frame: DecodedFrame,
    ) -> Result<bool, SupervisorError> {
        let depth = self.config.frame_queue_depth;
        let s = self.session_mut(id)?;
        if s.queue.len() >= depth {
            self.stats.backpressure_drops += 1;
            return Ok(false);
        }
        s.queue.push_back(frame);
        self.stats.frames_enqueued += 1;
        Ok(true)
    }

    /// One supervision cycle: visit every session in admission order and
    /// run at most one queued frame each, advancing health per the state
    /// machine. Returns the reports produced this tick.
    pub fn tick(&mut self) -> Vec<(SessionId, FrameReport)> {
        self.tick += 1;
        self.stats.ticks += 1;
        let now = self.tick;
        let mut reports = Vec::new();
        for s in &mut self.sessions {
            match s.health {
                HealthState::Quarantined { until_tick } if now < until_tick => {
                    self.stats.quarantined_ticks += 1;
                    continue;
                }
                HealthState::Quarantined { .. } => s.health = HealthState::Restarting,
                _ => {}
            }
            let Some(frame) = s.queue.pop_front() else { continue };
            let probing = s.health == HealthState::Restarting;
            let report = s.vd.process_decoded(&frame);
            self.stats.frames_processed += 1;
            let breaker_fault = matches!(
                &report.skipped,
                Some(SkipReason::Detect(DetectorError::Launch { .. }))
            );
            if probing {
                if breaker_fault {
                    self.stats.probes_failed += 1;
                    s.vd.detector_mut().cool_down();
                    s.health =
                        HealthState::Quarantined { until_tick: now + self.config.cooldown_ticks };
                } else {
                    self.stats.probes_succeeded += 1;
                    s.consecutive = 0;
                    s.health = if report.outcome == FrameOutcome::Ok {
                        HealthState::Healthy
                    } else {
                        HealthState::Degraded
                    };
                }
            } else if breaker_fault {
                s.consecutive += 1;
                if s.consecutive >= self.config.breaker_threshold {
                    s.consecutive = 0;
                    self.stats.breaker_trips += 1;
                    s.vd.detector_mut().cool_down();
                    s.health =
                        HealthState::Quarantined { until_tick: now + self.config.cooldown_ticks };
                } else {
                    s.health = HealthState::Degraded;
                }
            } else {
                s.consecutive = 0;
                s.health = if report.outcome == FrameOutcome::Ok {
                    HealthState::Healthy
                } else {
                    HealthState::Degraded
                };
            }
            reports.push((s.id, report));
        }
        reports
    }

    /// Tick until every queue is empty. Quarantines expire
    /// deterministically and probes consume frames, so this terminates
    /// for any finite input.
    pub fn drain(&mut self) -> Vec<(SessionId, FrameReport)> {
        let mut out = Vec::new();
        while self.sessions.iter().any(|s| !s.queue.is_empty()) {
            out.extend(self.tick());
        }
        out
    }

    /// Capture a session's full resumable state.
    pub fn checkpoint(&self, id: SessionId) -> Result<SessionCheckpoint, SupervisorError> {
        let s = self.session(id)?;
        let snapshot = s.vd.snapshot();
        Ok(SessionCheckpoint {
            session: s.id,
            next_frame: snapshot.stats.frames,
            width: s.width,
            height: s.height,
            health: match s.health {
                HealthState::Healthy => CheckpointHealth::Healthy,
                HealthState::Degraded => CheckpointHealth::Degraded,
                HealthState::Restarting => CheckpointHealth::Restarting,
                HealthState::Quarantined { until_tick } => CheckpointHealth::Quarantined {
                    remaining_ticks: until_tick.saturating_sub(self.tick),
                },
            },
            consecutive_faults: s.consecutive,
            fault_cursor: s.vd.detector().fault_cursor(),
            policy: s.vd.policy().clone(),
            snapshot,
        })
    }

    /// Close a session, refunding its memory charge. Returns its final
    /// stream stats.
    pub fn close(&mut self, id: SessionId) -> Result<StreamStats, SupervisorError> {
        let idx = self
            .sessions
            .iter()
            .position(|s| s.id == id)
            .ok_or(SupervisorError::UnknownSession { session: id })?;
        let s = self.sessions.remove(idx);
        self.bytes_in_use -= s.charged_bytes;
        Ok(s.vd.stats().clone())
    }

    fn session(&self, id: SessionId) -> Result<&Session, SupervisorError> {
        self.sessions
            .iter()
            .find(|s| s.id == id)
            .ok_or(SupervisorError::UnknownSession { session: id })
    }

    fn session_mut(&mut self, id: SessionId) -> Result<&mut Session, SupervisorError> {
        self.sessions
            .iter_mut()
            .find(|s| s.id == id)
            .ok_or(SupervisorError::UnknownSession { session: id })
    }

    pub fn health(&self, id: SessionId) -> Result<HealthState, SupervisorError> {
        Ok(self.session(id)?.health)
    }

    pub fn session_stats(&self, id: SessionId) -> Result<&StreamStats, SupervisorError> {
        Ok(self.session(id)?.vd.stats())
    }

    /// Frames waiting in a session's queue.
    pub fn queued_frames(&self, id: SessionId) -> Result<usize, SupervisorError> {
        Ok(self.session(id)?.queue.len())
    }

    /// Direct access to a session's detector (fault-plan changes,
    /// profiler access).
    pub fn video_detector_mut(
        &mut self,
        id: SessionId,
    ) -> Result<&mut VideoDetector, SupervisorError> {
        Ok(&mut self.session_mut(id)?.vd)
    }

    pub fn video_detector(&self, id: SessionId) -> Result<&VideoDetector, SupervisorError> {
        Ok(&self.session(id)?.vd)
    }

    /// Ids of live sessions in admission (scheduling) order.
    pub fn session_ids(&self) -> Vec<SessionId> {
        self.sessions.iter().map(|s| s.id).collect()
    }

    pub fn stats(&self) -> &SupervisorStats {
        &self.stats
    }

    pub fn config(&self) -> &SupervisorConfig {
        &self.config
    }

    pub fn current_tick(&self) -> u64 {
        self.tick
    }

    /// Device bytes charged against the budget across live sessions.
    pub fn bytes_in_use(&self) -> usize {
        self.bytes_in_use
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::FaultPlan;
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};
    use fd_imgproc::GrayImage;

    fn cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("t", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 8192, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c
    }

    fn frame(i: usize) -> DecodedFrame {
        DecodedFrame {
            index: i,
            luma: GrayImage::from_fn(64, 48, |x, y| ((x + y + i) % 251) as f32),
            decode_ms: 9.0,
            pts_ms: i as f64 * 41.7,
            fault: None,
        }
    }

    fn supervisor(cfg: SupervisorConfig) -> StreamSupervisor {
        StreamSupervisor::new(cfg)
    }

    fn admit_with_plan(
        sup: &mut StreamSupervisor,
        plan: Option<FaultPlan>,
    ) -> SessionId {
        sup.admit(
            &cascade(),
            DetectorConfig { fault_plan: plan, ..DetectorConfig::default() },
            24.0,
            RecoveryPolicy::default(),
            64,
            48,
        )
        .unwrap()
    }

    /// Every launch times out: each processed frame is a breaker fault.
    fn always_timeout() -> Option<FaultPlan> {
        Some(FaultPlan::seeded(1).with_launch_timeouts(1.0))
    }

    #[test]
    fn clean_frames_keep_a_session_healthy() {
        let mut sup = supervisor(SupervisorConfig::default());
        let id = admit_with_plan(&mut sup, None);
        for i in 0..3 {
            sup.enqueue_frame(id, frame(i)).unwrap();
        }
        let reports = sup.drain();
        assert_eq!(reports.len(), 3);
        assert_eq!(sup.health(id).unwrap(), HealthState::Healthy);
        assert_eq!(sup.stats().frames_processed, 3);
        assert_eq!(sup.stats().breaker_trips, 0);
    }

    #[test]
    fn degraded_frames_move_health_to_degraded_and_back() {
        let mut sup = supervisor(SupervisorConfig::default());
        let id = admit_with_plan(&mut sup, None);
        // A corrupt decode degrades the frame but produces results.
        let mut corrupt = frame(0);
        corrupt.fault = Some(fd_video::DecodeFault::Corrupted);
        sup.enqueue_frame(id, corrupt).unwrap();
        sup.tick();
        assert_eq!(sup.health(id).unwrap(), HealthState::Degraded);
        // A clean frame restores Healthy.
        sup.enqueue_frame(id, frame(1)).unwrap();
        sup.tick();
        assert_eq!(sup.health(id).unwrap(), HealthState::Healthy);
    }

    #[test]
    fn breaker_needs_k_consecutive_faults_to_trip() {
        let cfg = SupervisorConfig { breaker_threshold: 3, ..SupervisorConfig::default() };
        let mut sup = supervisor(cfg);
        let id = admit_with_plan(&mut sup, always_timeout());
        // Two faults: degraded, not quarantined.
        for i in 0..2 {
            sup.enqueue_frame(id, frame(i)).unwrap();
            sup.tick();
        }
        assert_eq!(sup.health(id).unwrap(), HealthState::Degraded);
        assert_eq!(sup.stats().breaker_trips, 0);
        // A clean frame resets the consecutive count...
        sup.video_detector_mut(id).unwrap().detector_mut().set_fault_plan(None);
        sup.enqueue_frame(id, frame(2)).unwrap();
        sup.tick();
        assert_eq!(sup.health(id).unwrap(), HealthState::Healthy);
        // ...so two more faults still do not trip.
        sup.video_detector_mut(id).unwrap().detector_mut().set_fault_plan(always_timeout());
        for i in 3..5 {
            sup.enqueue_frame(id, frame(i)).unwrap();
            sup.tick();
        }
        assert_eq!(sup.health(id).unwrap(), HealthState::Degraded);
        // The third consecutive fault trips.
        sup.enqueue_frame(id, frame(5)).unwrap();
        sup.tick();
        assert!(matches!(sup.health(id).unwrap(), HealthState::Quarantined { .. }));
        assert_eq!(sup.stats().breaker_trips, 1);
    }

    #[test]
    fn quarantine_holds_frames_for_the_full_cooldown() {
        let cfg = SupervisorConfig {
            breaker_threshold: 1,
            cooldown_ticks: 4,
            ..SupervisorConfig::default()
        };
        let mut sup = supervisor(cfg);
        let id = admit_with_plan(&mut sup, always_timeout());
        sup.enqueue_frame(id, frame(0)).unwrap();
        sup.tick(); // fault -> immediate trip (threshold 1)
        let HealthState::Quarantined { until_tick } = sup.health(id).unwrap() else {
            panic!("expected quarantine");
        };
        assert_eq!(until_tick, sup.current_tick() + 4);
        // Frames enqueued during quarantine are held, not processed.
        for i in 1..3 {
            sup.enqueue_frame(id, frame(i)).unwrap();
        }
        for _ in 0..3 {
            let reports = sup.tick();
            assert!(reports.is_empty(), "quarantined session must not run");
        }
        assert_eq!(sup.queued_frames(id).unwrap(), 2);
        assert!(sup.stats().quarantined_ticks >= 3);
    }

    #[test]
    fn half_open_probe_success_restores_the_session() {
        let cfg = SupervisorConfig {
            breaker_threshold: 1,
            cooldown_ticks: 2,
            ..SupervisorConfig::default()
        };
        let mut sup = supervisor(cfg);
        let id = admit_with_plan(&mut sup, always_timeout());
        sup.enqueue_frame(id, frame(0)).unwrap();
        sup.tick(); // trip
        // Device recovers during the cool-down.
        sup.video_detector_mut(id).unwrap().detector_mut().set_fault_plan(None);
        sup.enqueue_frame(id, frame(1)).unwrap();
        sup.tick(); // still quarantined (tick < until)
        assert!(matches!(sup.health(id).unwrap(), HealthState::Quarantined { .. }));
        let reports = sup.tick(); // expiry -> half-open probe runs
        assert_eq!(reports.len(), 1);
        assert_eq!(sup.health(id).unwrap(), HealthState::Healthy);
        assert_eq!(sup.stats().probes_succeeded, 1);
        assert_eq!(sup.stats().probes_failed, 0);
    }

    #[test]
    fn half_open_probe_failure_rearms_the_quarantine() {
        let cfg = SupervisorConfig {
            breaker_threshold: 1,
            cooldown_ticks: 2,
            ..SupervisorConfig::default()
        };
        let mut sup = supervisor(cfg);
        let id = admit_with_plan(&mut sup, always_timeout());
        sup.enqueue_frame(id, frame(0)).unwrap();
        sup.tick(); // trip at tick 1, until_tick 3
        sup.enqueue_frame(id, frame(1)).unwrap();
        sup.tick(); // tick 2: quarantined
        let reports = sup.tick(); // tick 3: probe runs and fails
        assert_eq!(reports.len(), 1);
        assert!(matches!(sup.health(id).unwrap(), HealthState::Quarantined { .. }));
        assert_eq!(sup.stats().probes_failed, 1);
        // Only the trip counts as a breaker trip; probe failures re-arm.
        assert_eq!(sup.stats().breaker_trips, 1);
    }

    #[test]
    fn restarting_with_an_empty_queue_waits_for_a_probe_frame() {
        let cfg = SupervisorConfig {
            breaker_threshold: 1,
            cooldown_ticks: 1,
            ..SupervisorConfig::default()
        };
        let mut sup = supervisor(cfg);
        let id = admit_with_plan(&mut sup, always_timeout());
        sup.enqueue_frame(id, frame(0)).unwrap();
        sup.tick(); // trip
        sup.tick(); // expiry with nothing queued
        assert_eq!(sup.health(id).unwrap(), HealthState::Restarting);
        sup.video_detector_mut(id).unwrap().detector_mut().set_fault_plan(None);
        sup.enqueue_frame(id, frame(1)).unwrap();
        sup.tick(); // the queued frame is the probe
        assert_eq!(sup.health(id).unwrap(), HealthState::Healthy);
    }

    #[test]
    fn admission_rejects_over_memory_budget() {
        let probe = VideoDetector::new(&cascade(), DetectorConfig::default(), 24.0).unwrap();
        let one_session = probe.detector().projected_device_bytes(64, 48).unwrap();
        let cfg = SupervisorConfig {
            memory_budget_bytes: one_session + one_session / 2,
            ..SupervisorConfig::default()
        };
        let mut sup = supervisor(cfg);
        let a = admit_with_plan(&mut sup, None);
        assert_eq!(sup.bytes_in_use(), one_session);
        let err = sup
            .admit(
                &cascade(),
                DetectorConfig::default(),
                24.0,
                RecoveryPolicy::default(),
                64,
                48,
            )
            .unwrap_err();
        assert!(matches!(err, SupervisorError::MemoryBudget { .. }));
        assert_eq!(sup.stats().rejected_memory, 1);
        // Closing refunds the charge and admission succeeds again.
        sup.close(a).unwrap();
        assert_eq!(sup.bytes_in_use(), 0);
        admit_with_plan(&mut sup, None);
    }

    #[test]
    fn admission_rejects_over_session_capacity() {
        let cfg = SupervisorConfig { max_sessions: 1, ..SupervisorConfig::default() };
        let mut sup = supervisor(cfg);
        admit_with_plan(&mut sup, None);
        let err = sup
            .admit(
                &cascade(),
                DetectorConfig::default(),
                24.0,
                RecoveryPolicy::default(),
                64,
                48,
            )
            .unwrap_err();
        assert!(matches!(err, SupervisorError::Capacity { max_sessions: 1 }));
        assert_eq!(sup.stats().rejected_capacity, 1);
    }

    #[test]
    fn bounded_queues_refuse_overflow_with_backpressure_counts() {
        let cfg = SupervisorConfig { frame_queue_depth: 2, ..SupervisorConfig::default() };
        let mut sup = supervisor(cfg);
        let id = admit_with_plan(&mut sup, None);
        assert!(sup.enqueue_frame(id, frame(0)).unwrap());
        assert!(sup.enqueue_frame(id, frame(1)).unwrap());
        assert!(!sup.enqueue_frame(id, frame(2)).unwrap(), "third frame must be refused");
        assert_eq!(sup.stats().backpressure_drops, 1);
        assert_eq!(sup.stats().frames_enqueued, 2);
        sup.drain();
        assert!(sup.enqueue_frame(id, frame(3)).unwrap(), "drained queue accepts again");
    }

    #[test]
    fn invalid_cascade_is_rejected_at_admission() {
        let mut sup = supervisor(SupervisorConfig::default());
        let empty = Cascade::new("empty", 24);
        let err = sup
            .admit(
                &empty,
                DetectorConfig::default(),
                24.0,
                RecoveryPolicy::default(),
                64,
                48,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            SupervisorError::Detector(DetectorError::InvalidCascade { .. })
        ));
    }

    #[test]
    fn supervised_zero_fault_run_matches_independent_sessions() {
        // Two sessions round-robined through the supervisor produce
        // StreamStats bit-identical to two independent VideoDetectors.
        let mut sup = supervisor(SupervisorConfig::default());
        let a = admit_with_plan(&mut sup, None);
        let b = admit_with_plan(&mut sup, None);
        let mut ref_a = VideoDetector::new(&cascade(), DetectorConfig::default(), 24.0).unwrap();
        let mut ref_b = VideoDetector::new(&cascade(), DetectorConfig::default(), 24.0).unwrap();
        for i in 0..6 {
            sup.enqueue_frame(a, frame(i)).unwrap();
            sup.enqueue_frame(b, frame(i + 100)).unwrap();
            ref_a.process_decoded(&frame(i));
            ref_b.process_decoded(&frame(i + 100));
        }
        sup.drain();
        assert_eq!(sup.session_stats(a).unwrap(), ref_a.stats());
        assert_eq!(sup.session_stats(b).unwrap(), ref_b.stats());
        assert_eq!(sup.health(a).unwrap(), HealthState::Healthy);
        assert_eq!(sup.health(b).unwrap(), HealthState::Healthy);
    }

    #[test]
    fn checkpoint_text_roundtrip_is_bit_exact() {
        let cfg = SupervisorConfig { breaker_threshold: 2, ..SupervisorConfig::default() };
        let mut sup = supervisor(cfg);
        let id = admit_with_plan(
            &mut sup,
            Some(FaultPlan::seeded(9).with_transient_launch_failures(0.02)),
        );
        for i in 0..5 {
            sup.enqueue_frame(id, frame(i)).unwrap();
        }
        sup.drain();
        let ckpt = sup.checkpoint(id).unwrap();
        let back = SessionCheckpoint::from_text(&ckpt.to_text()).unwrap();
        assert_eq!(back, ckpt);
        // Quarantined remaining-ticks survive the round-trip too.
        let mut q = ckpt.clone();
        q.health = CheckpointHealth::Quarantined { remaining_ticks: 7 };
        assert_eq!(SessionCheckpoint::from_text(&q.to_text()).unwrap(), q);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_with_line_numbers() {
        let mut sup = supervisor(SupervisorConfig::default());
        let id = admit_with_plan(&mut sup, None);
        let text = sup.checkpoint(id).unwrap().to_text();
        // Version mismatch.
        let bad = text.replace("checkpoint v1", "checkpoint v9");
        assert!(SessionCheckpoint::from_text(&bad).is_err());
        // Truncation.
        let cut: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(SessionCheckpoint::from_text(&cut).is_err());
        // Mangled f64 bits.
        let bad = text.replacen("policy 3 ", "policy 3 zz", 1);
        let e = SessionCheckpoint::from_text(&bad).unwrap_err();
        assert!(e.line > 0, "{e}");
        // Window length mismatch.
        let bad = text.replace("window 0", "window 3");
        assert!(SessionCheckpoint::from_text(&bad).is_err());
    }

    #[test]
    fn unknown_sessions_surface_typed_errors() {
        let mut sup = supervisor(SupervisorConfig::default());
        let ghost = SessionId(42);
        assert!(matches!(
            sup.enqueue_frame(ghost, frame(0)),
            Err(SupervisorError::UnknownSession { .. })
        ));
        assert!(matches!(sup.health(ghost), Err(SupervisorError::UnknownSession { .. })));
        assert!(matches!(sup.close(ghost), Err(SupervisorError::UnknownSession { .. })));
        assert!(matches!(sup.checkpoint(ghost), Err(SupervisorError::UnknownSession { .. })));
    }
}
