//! Typed errors for the detection pipeline.
//!
//! Every fallible step — kernel launches, device memory operations,
//! decode faults, user-supplied geometry — surfaces as a
//! [`DetectorError`] instead of a panic, so a streaming caller can
//! distinguish *transient* faults (worth a bounded retry) from
//! *unrecoverable* ones (skip the frame, keep the stream alive).

use std::error::Error;
use std::fmt;

use fd_gpu::{LaunchError, MemoryError};
use fd_haar::CascadeError;
use fd_video::DecodeFault;

/// Error produced anywhere in the detection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorError {
    /// A kernel launch failed. `level` is the pyramid level whose chain
    /// was being built (`None` outside per-level work), `frame` the
    /// stream frame index when known.
    Launch {
        kernel: &'static str,
        level: Option<usize>,
        frame: Option<usize>,
        source: LaunchError,
    },
    /// A device memory operation failed (constant staging, texture
    /// binding, host↔device copy).
    Memory { context: &'static str, source: MemoryError },
    /// The hardware decoder faulted on a frame.
    Decode { frame: usize, fault: DecodeFault },
    /// Frame smaller than the cascade's detection window.
    FrameTooSmall { width: usize, height: usize, window: usize },
    /// Pyramid scale factor must be finite and > 1.
    BadScaleFactor { scale_factor: f64 },
    /// Playback rate must be finite and > 0.
    BadPlaybackFps { fps: f64 },
    /// A structurally invalid configuration (zero GPUs, zero-stage
    /// segments, unsupported cascade window, ...).
    InvalidConfig { reason: &'static str },
    /// The cascade failed semantic validation (out-of-window features,
    /// non-finite thresholds, unsatisfiable stages, ...). Raised by
    /// [`FaceDetector::try_new`](crate::FaceDetector::try_new) before any
    /// device state is touched, so a corrupt model can never reach a
    /// kernel.
    InvalidCascade { source: CascadeError },
}

impl DetectorError {
    /// `true` when a bounded retry of the same work can succeed (the
    /// fault-injection layer's transient launch failures).
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::Launch { source, .. } if source.is_transient())
    }

    /// Attach a stream frame index to errors that carry one.
    pub fn at_frame(mut self, frame_idx: usize) -> Self {
        match &mut self {
            Self::Launch { frame, .. } => *frame = Some(frame_idx),
            Self::Decode { frame, .. } => *frame = frame_idx,
            _ => {}
        }
        self
    }

    /// For an injected launch fault on a batched submission, the batch
    /// slot (frame index within the batch) the device attributed the
    /// fault to. `None` for every other error and for plain launches.
    pub fn batch_slot(&self) -> Option<usize> {
        match self {
            Self::Launch { source, .. } => source.batch_slot(),
            _ => None,
        }
    }

    /// `true` when the error is a *device-side* fault (an injected launch
    /// failure) rather than a request-caused rejection (bad geometry,
    /// invalid configuration, ...). A serving layer's retry and health
    /// machinery only reacts to device faults: retrying a malformed
    /// request cannot succeed and must not trip a breaker.
    pub fn is_device_fault(&self) -> bool {
        matches!(
            self,
            Self::Launch {
                source: LaunchError::InjectedTimeout { .. } | LaunchError::InjectedTransient { .. },
                ..
            }
        )
    }
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Launch { kernel, level, frame, source } => {
                write!(f, "kernel `{kernel}` failed to launch")?;
                if let Some(l) = level {
                    write!(f, " at pyramid level {l}")?;
                }
                if let Some(fr) = frame {
                    write!(f, " (frame {fr})")?;
                }
                write!(f, ": {source}")
            }
            Self::Memory { context, source } => write!(f, "{context}: {source}"),
            Self::Decode { frame, fault } => {
                write!(f, "decode fault on frame {frame}: {fault:?}")
            }
            Self::FrameTooSmall { width, height, window } => write!(
                f,
                "frame {width}x{height} smaller than the {window}-px detection window"
            ),
            Self::BadScaleFactor { scale_factor } => {
                write!(f, "pyramid scale factor must be finite and > 1, got {scale_factor}")
            }
            Self::BadPlaybackFps { fps } => {
                write!(f, "playback fps must be finite and > 0, got {fps}")
            }
            Self::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            Self::InvalidCascade { source } => write!(f, "invalid cascade: {source}"),
        }
    }
}

impl Error for DetectorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Launch { source, .. } => Some(source),
            Self::Memory { source, .. } => Some(source),
            Self::InvalidCascade { source } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transience_follows_the_launch_error() {
        let transient = DetectorError::Launch {
            kernel: "cascade_eval",
            level: Some(3),
            frame: None,
            source: LaunchError::InjectedTransient { kernel: "cascade_eval", batch_slot: None },
        };
        assert!(transient.is_transient());
        assert!(transient.is_device_fault());
        assert_eq!(transient.batch_slot(), None);
        let timeout = DetectorError::Launch {
            kernel: "cascade_eval",
            level: Some(3),
            frame: None,
            source: LaunchError::InjectedTimeout { kernel: "cascade_eval", batch_slot: Some(2) },
        };
        assert!(!timeout.is_transient());
        assert!(timeout.is_device_fault());
        assert_eq!(timeout.batch_slot(), Some(2));
        assert!(!DetectorError::BadPlaybackFps { fps: f64::NAN }.is_transient());
        assert!(!DetectorError::BadPlaybackFps { fps: f64::NAN }.is_device_fault());
        let too_small = DetectorError::FrameTooSmall { width: 8, height: 8, window: 20 };
        assert!(!too_small.is_device_fault(), "request-caused errors are not device faults");
    }

    #[test]
    fn at_frame_annotates_launch_errors() {
        let e = DetectorError::Launch {
            kernel: "scale_bilinear",
            level: Some(0),
            frame: None,
            source: LaunchError::InjectedTransient { kernel: "scale_bilinear", batch_slot: None },
        }
        .at_frame(17);
        let msg = e.to_string();
        assert!(msg.contains("frame 17"), "{msg}");
        assert!(msg.contains("scale_bilinear"), "{msg}");
        assert!(msg.contains("level 0"), "{msg}");
    }
}
