//! Row-wise inclusive prefix-sum kernel (paper §III-B).
//!
//! Integral images are built as
//! `transpose(scan_rows(transpose(scan_rows(I))))` following Harris et
//! al.'s GPU scan and the Messom/Bilgic transposition refinement. One
//! thread block processes one image row with a work-efficient block scan:
//! the row is swept in block-sized segments, each scanned in shared memory
//! (up-sweep + down-sweep), with a running carry added on the way out.
//!
//! The first scan pass also performs the 8-bit quantization of the
//! filtered pixels ([`ScanInput::QuantizeF32`]), matching
//! `IntegralImage::from_gray`.

use fd_gpu::{BlockCtx, DevBuf, Kernel, LaunchConfig};

/// Where the scan reads its input from.
#[derive(Debug, Clone, Copy)]
pub enum ScanInput {
    /// Quantize an `f32` image to 8-bit luma, then scan (first pass).
    QuantizeF32(DevBuf<f32>),
    /// Scan an already-integer matrix (second pass, after transpose).
    U32(DevBuf<u32>),
}

pub struct ScanRowsKernel {
    pub input: ScanInput,
    pub output: DevBuf<u32>,
    /// Row length.
    pub width: usize,
    /// Number of rows (one block each).
    pub height: usize,
}

impl ScanRowsKernel {
    pub const THREADS: u32 = 256;
    /// Autotunable block widths, default first (all powers of two — the
    /// block scan's sweep depth is `log2(threads)`). The sequential-scan
    /// functional body is thread-count independent, so outputs are
    /// byte-identical across the family.
    pub const THREAD_OPTIONS: [u32; 3] = [256, 128, 512];

    pub fn config(&self) -> LaunchConfig {
        // grid.y indexes rows; one block per row.
        LaunchConfig::new((1u32, self.height as u32), (Self::THREADS, 1u32))
            .with_shared_mem(2 * Self::THREADS * 4)
    }

    /// Launch geometry for an alternate width from [`Self::THREAD_OPTIONS`].
    pub fn config_for(&self, threads: u32) -> LaunchConfig {
        LaunchConfig::new((1u32, self.height as u32), (threads, 1u32))
            .with_shared_mem(2 * threads * 4)
    }
}

impl Kernel for ScanRowsKernel {
    fn name(&self) -> &'static str {
        "scan_rows"
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let row = ctx.block_idx.y as usize;
        if row >= self.height {
            return;
        }
        let w = self.width;
        // Block width comes from the launch config (the autotuner may
        // re-tile); the sequential row scan below is identical for any
        // width, only the work model changes. The shared allocation
        // asserts the launch requested the scratch the real block scan
        // needs at this width.
        let threads = ctx.block_dim.x;
        let _scratch = ctx.shared_alloc_u32(2 * threads as usize);

        {
            let mut out = ctx.mem.write(self.output);
            let dst = &mut out[row * w..(row + 1) * w];
            match self.input {
                ScanInput::QuantizeF32(src) => {
                    let src = ctx.mem.read(src);
                    let mut acc = 0u32;
                    for (x, d) in dst.iter_mut().enumerate() {
                        acc += src[row * w + x].round().clamp(0.0, 255.0) as u32;
                        *d = acc;
                    }
                }
                ScanInput::U32(src) => {
                    let src = ctx.mem.read(src);
                    let mut acc = 0u32;
                    for (x, d) in dst.iter_mut().enumerate() {
                        acc += src[row * w + x];
                        *d = acc;
                    }
                }
            }
        }

        // Work model: the row is processed in ceil(w / threads) segments;
        // each segment does an up-sweep + down-sweep over `threads`
        // elements in shared memory (~2*threads shared accesses,
        // 2*log2(threads) warp instruction steps per warp) plus the
        // carry add.
        let t = threads as u64;
        let warps = t.div_ceil(ctx.warp_size() as u64);
        let segments = (w as u64).div_ceil(t);
        let log_t = t.ilog2() as u64;
        // Buffer-tagged traffic: credited to on-chip rates when the scan
        // runs fused behind its producer.
        match self.input {
            ScanInput::QuantizeF32(src) => ctx.global_load_buf(src, 4 * w as u64),
            ScanInput::U32(src) => ctx.global_load_buf(src, 4 * w as u64),
        }
        ctx.global_store_buf(self.output, 4 * w as u64);
        ctx.meter.shared(segments * 2 * t / ctx.warp_size() as u64);
        ctx.meter.alu(segments * warps * 2 * log_t);
        for _ in 0..segments * 2 {
            ctx.syncthreads();
        }
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        match self.input {
            ScanInput::QuantizeF32(src) => set.reads(src),
            ScanInput::U32(src) => set.reads(src),
        }
        .writes(self.output);
    }

    fn fusion_traits(&self) -> Option<fd_gpu::FusionTraits> {
        Some(fd_gpu::FusionTraits {
            read_domain: (self.width, self.height),
            write_domain: (self.width, self.height),
            // One block owns one row of the output.
            tile_local: true,
        })
    }

    fn shape_family(&self) -> Option<fd_gpu::ShapeFamily> {
        let shapes = Self::THREAD_OPTIONS
            .iter()
            .map(|&t| {
                let cfg = self.config_for(t);
                let segments = (self.width as f64 / t as f64).ceil().max(1.0);
                fd_gpu::ShapeCandidate {
                    grid: cfg.grid,
                    block: cfg.block,
                    shared_mem_bytes: cfg.shared_mem_bytes,
                    registers_per_thread: self.registers_per_thread(),
                    // Sweep depth per segment: 2*log2(t) steps.
                    issue_per_thread: segments * 2.0 * (t as f64).log2() / 32.0,
                    // The whole row in and out, split across the block.
                    mem_bytes_per_thread: 8.0 * self.width as f64 / t as f64,
                }
            })
            .collect();
        Some(fd_gpu::ShapeFamily { kernel: self.name(), shapes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode, Gpu};

    #[test]
    fn scans_u32_rows_like_host_reference() {
        let (w, h) = (37, 5);
        let data: Vec<u32> = (0..w * h).map(|i| (i % 11) as u32).collect();
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let src = gpu.mem.upload(&data);
        let dst = gpu.mem.alloc::<u32>(w * h);
        let k = ScanRowsKernel { input: ScanInput::U32(src), output: dst, width: w, height: h };
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        gpu.synchronize();
        let out = gpu.mem.download(dst);

        let mut expect = data;
        fd_imgproc::scan::scan_rows_inclusive(&mut expect, w, h);
        assert_eq!(out, expect);
    }

    #[test]
    fn quantizing_pass_rounds_like_to_u8() {
        let vals = vec![0.4f32, 0.6, 254.7, 300.0, -5.0];
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let src = gpu.mem.upload(&vals);
        let dst = gpu.mem.alloc::<u32>(5);
        let k = ScanRowsKernel {
            input: ScanInput::QuantizeF32(src),
            output: dst,
            width: 5,
            height: 1,
        };
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        gpu.synchronize();
        // Quantized: 0, 1, 255, 255, 0 -> prefix 0, 1, 256, 511, 511.
        assert_eq!(gpu.mem.download(dst), vec![0, 1, 256, 511, 511]);
    }

    #[test]
    fn one_block_per_row_geometry() {
        let k = ScanRowsKernel {
            input: ScanInput::U32(Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial).mem.alloc::<u32>(8)),
            output: Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial).mem.alloc::<u32>(8),
            width: 4,
            height: 2,
        };
        let cfg = k.config();
        assert_eq!(cfg.grid.y, 2);
        assert_eq!(cfg.total_blocks(), 2);
    }
}
