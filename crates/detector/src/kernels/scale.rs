//! Scaling kernel: builds one pyramid level with bilinear texture fetches.
//!
//! The decoded frame lives in texture memory; each thread computes one
//! output pixel by mapping its center back into the source and issuing a
//! single `tex2D` fetch with linear filtering (paper §III-A) — the
//! fixed-function interpolator does the 4-tap blend.

use fd_gpu::{BlockCtx, DevBuf, Kernel, LaunchConfig, TexId};

/// One launch per pyramid level.
pub struct ScaleKernel {
    /// Source frame texture.
    pub src: TexId,
    /// Source dimensions.
    pub src_w: usize,
    pub src_h: usize,
    /// Destination buffer (`dst_w * dst_h`).
    pub dst: DevBuf<f32>,
    pub dst_w: usize,
    pub dst_h: usize,
}

impl ScaleKernel {
    pub const BLOCK: u32 = 16;
    /// Autotunable tilings, default first: 256 threads each (the
    /// fused-chain contract), pure gather through the texture unit, so
    /// any tiling produces byte-identical output.
    pub const BLOCKS: [(u32, u32); 2] = [(16, 16), (32, 8)];

    /// Launch geometry for this kernel.
    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::tile2d(self.dst_w, self.dst_h, Self::BLOCK, Self::BLOCK)
    }

    /// Launch geometry for an alternate tiling from [`Self::BLOCKS`].
    pub fn config_for(&self, (bw, bh): (u32, u32)) -> LaunchConfig {
        LaunchConfig::tile2d(self.dst_w, self.dst_h, bw, bh)
    }
}

impl Kernel for ScaleKernel {
    fn name(&self) -> &'static str {
        "scale"
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        // Block shape comes from the launch config (the autotuner may
        // re-tile); each output pixel is an independent texture gather.
        let bw = ctx.block_dim.x as usize;
        let bh = ctx.block_dim.y as usize;
        let bx = ctx.block_idx.x as usize * bw;
        let by = ctx.block_idx.y as usize * bh;
        let sx = self.src_w as f32 / self.dst_w as f32;
        let sy = self.src_h as f32 / self.dst_h as f32;

        let mut dst = ctx.mem.write(self.dst);
        let mut covered = 0u64;
        for ty in 0..bh {
            let y = by + ty;
            if y >= self.dst_h {
                continue;
            }
            for tx in 0..bw {
                let x = bx + tx;
                if x >= self.dst_w {
                    continue;
                }
                let v = ctx.tex2d(self.src, (x as f32 + 0.5) * sx, (y as f32 + 0.5) * sy);
                dst[y * self.dst_w + x] = v;
                covered += 1;
            }
        }
        drop(dst);

        // Per covered thread: ~6 address ALU ops (as warp instructions) and
        // a 4-byte store; the tex2d call meters fetches itself. The store
        // is buffer-tagged so a fused chain can keep the scaled level
        // on-chip for its consumer.
        let warp = ctx.warp_size() as u64;
        ctx.meter.alu(6 * covered.div_ceil(warp));
        ctx.global_store_buf(self.dst, 4 * covered);
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        // The source is a texture; texture state is flushed ahead of any
        // host-side mutation, so only the buffer write needs declaring.
        set.writes(self.dst);
    }

    fn fusion_traits(&self) -> Option<fd_gpu::FusionTraits> {
        Some(fd_gpu::FusionTraits {
            // The read side is a texture, outside the buffer domain
            // contract; report the output geometry (a chain head's read
            // domain is never matched against a producer).
            read_domain: (self.dst_w, self.dst_h),
            write_domain: (self.dst_w, self.dst_h),
            // Each block writes exactly its own output tile.
            tile_local: true,
        })
    }

    fn shape_family(&self) -> Option<fd_gpu::ShapeFamily> {
        let shapes = Self::BLOCKS
            .iter()
            .map(|&shape| {
                let cfg = self.config_for(shape);
                fd_gpu::ShapeCandidate {
                    grid: cfg.grid,
                    block: cfg.block,
                    shared_mem_bytes: cfg.shared_mem_bytes,
                    registers_per_thread: self.registers_per_thread(),
                    // ~6 address ops per pixel; the tex unit does the blend.
                    issue_per_thread: 6.0,
                    // One 4 B fetch through tex + one 4 B store.
                    mem_bytes_per_thread: 8.0,
                }
            })
            .collect();
        Some(fd_gpu::ShapeFamily { kernel: self.name(), shapes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode, Gpu, Texture2D};
    use fd_imgproc::resize::resize_bilinear;
    use fd_imgproc::GrayImage;

    fn run_scale(src: &GrayImage, dw: usize, dh: usize) -> Vec<f32> {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let tex = gpu.bind_texture(Texture2D::from_data(
            src.width(),
            src.height(),
            src.as_slice().to_vec(),
        ));
        let dst = gpu.mem.alloc::<f32>(dw * dh);
        let k = ScaleKernel {
            src: tex,
            src_w: src.width(),
            src_h: src.height(),
            dst,
            dst_w: dw,
            dst_h: dh,
        };
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        gpu.synchronize();
        gpu.mem.download(dst)
    }

    #[test]
    fn matches_host_bilinear_resize_exactly() {
        let src = GrayImage::from_fn(64, 48, |x, y| ((x * 7 + y * 13) % 251) as f32);
        let out = run_scale(&src, 41, 31);
        let reference = resize_bilinear(&src, 41, 31);
        for (i, (a, b)) in out.iter().zip(reference.as_slice()).enumerate() {
            assert!((a - b).abs() < 1e-4, "pixel {i}: gpu {a} vs cpu {b}");
        }
    }

    #[test]
    fn handles_non_multiple_of_block_dims() {
        let src = GrayImage::from_fn(30, 30, |x, _| x as f32);
        let out = run_scale(&src, 17, 9);
        assert_eq!(out.len(), 17 * 9);
        // Monotone gradient survives scaling.
        assert!(out[0] < out[16]);
    }

    #[test]
    fn meters_texture_fetches_and_stores() {
        let src = GrayImage::from_fn(32, 32, |_, _| 1.0);
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let tex = gpu.bind_texture(Texture2D::from_data(32, 32, src.as_slice().to_vec()));
        let dst = gpu.mem.alloc::<f32>(16 * 16);
        let k = ScaleKernel { src: tex, src_w: 32, src_h: 32, dst, dst_w: 16, dst_h: 16 };
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        let t = gpu.synchronize();
        let c = &t.events[0].counters;
        assert_eq!(c.tex_fetches, 256);
        assert_eq!(c.global_bytes_written, 1024);
    }
}
