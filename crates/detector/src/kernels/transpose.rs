//! Tiled matrix-transpose kernel (paper §III-B, after Ruetsch &
//! Micikevicius).
//!
//! 16x16 tiles staged through shared memory (padded to 16x17 in the real
//! kernel to avoid bank conflicts) so both the read and the write side are
//! coalesced.

use fd_gpu::{BlockCtx, DevBuf, Kernel, LaunchConfig};

pub struct TransposeKernel {
    /// Input: `width x height`, row-major.
    pub src: DevBuf<u32>,
    /// Output: `height x width`, row-major.
    pub dst: DevBuf<u32>,
    pub width: usize,
    pub height: usize,
}

impl TransposeKernel {
    pub const TILE: u32 = 16;
    /// 16x17 padded tile.
    pub const SHARED_BYTES: u32 = 16 * 17 * 4;

    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::tile2d(self.width, self.height, Self::TILE, Self::TILE)
            .with_shared_mem(Self::SHARED_BYTES)
    }
}

impl Kernel for TransposeKernel {
    fn name(&self) -> &'static str {
        "transpose"
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let t = Self::TILE as usize;
        let bx = ctx.block_idx.x as usize * t;
        let by = ctx.block_idx.y as usize * t;
        let (w, h) = (self.width, self.height);

        let mut tile = ctx.shared_alloc_u32(t * (t + 1));
        let mut loaded = 0u64;
        {
            let src = ctx.mem.read(self.src);
            for ty in 0..t {
                let y = by + ty;
                if y >= h {
                    continue;
                }
                for tx in 0..t {
                    let x = bx + tx;
                    if x >= w {
                        continue;
                    }
                    tile[ty * (t + 1) + tx] = src[y * w + x];
                    loaded += 1;
                }
            }
        }
        ctx.syncthreads();
        {
            let mut dst = ctx.mem.write(self.dst);
            for ty in 0..t {
                let y = by + ty;
                if y >= h {
                    continue;
                }
                for tx in 0..t {
                    let x = bx + tx;
                    if x >= w {
                        continue;
                    }
                    // dst is h x w: element (row x, col y).
                    dst[x * h + y] = tile[ty * (t + 1) + tx];
                }
            }
        }

        let warps = (t * t) as u64 / ctx.warp_size() as u64;
        // Buffer-tagged traffic: fusion-local intermediates are credited
        // to on-chip rates when this transpose runs inside a fused chain.
        ctx.global_load_buf(self.src, 4 * loaded);
        ctx.global_store_buf(self.dst, 4 * loaded);
        // One shared store and one shared load per element — one
        // transaction per warp each way, conflict-free thanks to the
        // padding.
        ctx.meter.shared(2 * warps);
        ctx.meter.alu(4 * warps);
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        set.reads(self.src).writes(self.dst);
    }

    fn fusion_traits(&self) -> Option<fd_gpu::FusionTraits> {
        Some(fd_gpu::FusionTraits {
            read_domain: (self.width, self.height),
            // The output is the transposed matrix: domains swap, which is
            // exactly what a consumer expecting `height x width` checks.
            write_domain: (self.height, self.width),
            tile_local: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode, Gpu};

    fn run_transpose(data: &[u32], w: usize, h: usize) -> Vec<u32> {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let src = gpu.mem.upload(data);
        let dst = gpu.mem.alloc::<u32>(w * h);
        let k = TransposeKernel { src, dst, width: w, height: h };
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        gpu.synchronize();
        gpu.mem.download(dst)
    }

    #[test]
    fn matches_host_transpose() {
        let (w, h) = (37, 21); // not multiples of the tile
        let data: Vec<u32> = (0..(w * h) as u32).collect();
        let out = run_transpose(&data, w, h);
        assert_eq!(out, fd_imgproc::scan::transpose(&data, w, h));
    }

    #[test]
    fn double_transpose_is_identity() {
        let (w, h) = (19, 33);
        let data: Vec<u32> = (0..(w * h) as u32).map(|v| v.wrapping_mul(2654435761)).collect();
        let once = run_transpose(&data, w, h);
        let twice = run_transpose(&once, h, w);
        assert_eq!(twice, data);
    }

    #[test]
    fn square_tile_geometry() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let src = gpu.mem.alloc::<u32>(64 * 64);
        let dst = gpu.mem.alloc::<u32>(64 * 64);
        let k = TransposeKernel { src, dst, width: 64, height: 64 };
        let cfg = k.config();
        assert_eq!(cfg.grid.x, 4);
        assert_eq!(cfg.grid.y, 4);
        assert_eq!(cfg.shared_mem_bytes, 16 * 17 * 4);
    }
}
