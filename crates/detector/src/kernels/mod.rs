//! The pipeline's device kernels.
//!
//! Each kernel is a [`fd_gpu::Kernel`] implementation: the functional body
//! computes bit-exact results against device memory, and metering calls
//! describe the SIMT work (warp instructions, memory transactions,
//! divergence) that the timing model schedules.

pub mod cascade;
pub mod display;
pub mod filter;
pub mod rearrange;
pub mod scale;
pub mod scan;
pub mod transpose;

pub use cascade::CascadeKernel;
pub use display::DisplayKernel;
pub use rearrange::{run_rearranged_level, CascadeSegmentKernel, CompactKernel};
pub use filter::FilterKernel;
pub use scale::ScaleKernel;
pub use scan::ScanRowsKernel;
pub use transpose::TransposeKernel;
