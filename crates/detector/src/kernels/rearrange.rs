//! Thread-rearrangement cascade evaluation — the related-work baseline of
//! Herout et al. (*Real-time object detection on CUDA*, JRTIP 2011),
//! discussed in the paper's §II as the alternative answer to GPU
//! underutilization:
//!
//! "All image locations that have not been early rejected are reassigned
//! into threads that share the same blocks. Then the cascade evaluation
//! kernel is relaunched to process these blocks, and thread rearrangement
//! repeated until all image locations are computed."
//!
//! Instead of one kernel per scale running concurrently, the cascade is
//! split into *segments* of stages. After each segment a compaction pass
//! gathers the surviving window coordinates into a dense work list, and
//! the next segment is launched over that list with fully-occupied
//! blocks. The trade-off this models faithfully: compacted windows are
//! scattered across the image, so the cooperative 48x48 shared-memory
//! tile of the blocked kernel no longer applies — every rectangle corner
//! becomes an uncoalesced global load — and each relaunch adds a
//! compaction kernel plus launch latency. The ablation binary
//! (`fd-bench --bin ablation_rearrange`) quantifies both effects against
//! the paper's concurrent-kernel approach.

use std::sync::Arc;

use fd_gpu::{BlockCtx, DevBuf, Gpu, Kernel, LaunchConfig, StreamId, Timeline};
use fd_haar::encode::quantize_cascade;
use fd_haar::Cascade;

use crate::error::DetectorError;

/// Evaluates cascade stages `[stage_begin, stage_end)` for a dense list
/// of surviving windows. One thread per work item.
pub struct CascadeSegmentKernel {
    /// Inclusive integral image of the level.
    pub integral: DevBuf<u32>,
    pub width: usize,
    pub height: usize,
    /// Packed window coordinates (`y << 16 | x`), dense.
    pub coords: DevBuf<u32>,
    /// Number of valid entries in `coords`.
    pub n_windows: usize,
    /// Running cascade scores, parallel to `coords`.
    pub scores: DevBuf<f32>,
    /// Survivor flags, parallel to `coords` (1 = still alive).
    pub alive: DevBuf<u32>,
    /// Depth reached, parallel to `coords`.
    pub depth: DevBuf<u32>,
    pub stage_begin: usize,
    pub stage_end: usize,
    cascade: Arc<Cascade>,
}

impl CascadeSegmentKernel {
    pub const THREADS: u32 = 256;

    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::linear(self.n_windows.max(1), Self::THREADS)
    }
}

impl Kernel for CascadeSegmentKernel {
    fn name(&self) -> &'static str {
        "cascade_segment"
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let tpb = Self::THREADS as usize;
        let base = ctx.block_idx.x as usize * tpb;
        let end = (base + tpb).min(self.n_windows);
        if base >= end {
            return;
        }
        let window = self.cascade.window as usize;
        let w = self.width;

        let coords = ctx.mem.read(self.coords);
        let mut scores = ctx.mem.write(self.scores);
        let mut alive = ctx.mem.write(self.alive);
        let mut depth = ctx.mem.write(self.depth);
        let integral = ctx.mem.read(self.integral);

        // Inclusive-integral rectangle sum at an arbitrary window origin.
        let rect_sum = |ox: usize, oy: usize, rx: usize, ry: usize, rw: usize, rh: usize| -> i64 {
            let x0 = ox + rx;
            let y0 = oy + ry;
            let at = |x: isize, y: isize| -> i64 {
                if x < 0 || y < 0 {
                    0
                } else {
                    integral[y as usize * w + x as usize] as i64
                }
            };
            let x1 = (x0 + rw) as isize - 1;
            let y1 = (y0 + rh) as isize - 1;
            at(x1, y1) - at(x0 as isize - 1, y1) - at(x1, y0 as isize - 1)
                + at(x0 as isize - 1, y0 as isize - 1)
        };

        let mut m_const = 0u64;
        let mut m_global = 0u64;
        let mut m_alu = 0u64;
        let mut m_branches = 0u64;
        let mut m_divergent = 0u64;

        // Warp-structured evaluation over the dense work list.
        let warp = ctx.warp_size() as usize;
        let mut ws = base;
        while ws < end {
            let we = (ws + warp).min(end);
            let mut lane_alive: Vec<bool> = (ws..we).map(|i| alive[i] != 0).collect();
            for si in self.stage_begin..self.stage_end.min(self.cascade.stages.len()) {
                if !lane_alive.iter().any(|&a| a) {
                    break;
                }
                let stage = &self.cascade.stages[si];
                let mut sums = vec![0.0f32; we - ws];
                for stump in &stage.stumps {
                    m_const += 3;
                    m_branches += 1;
                    let nrects = stump.feature.rects().len() as u64;
                    for (li, i) in (ws..we).enumerate() {
                        if !lane_alive[li] {
                            continue;
                        }
                        let c = coords[i];
                        let (ox, oy) = ((c & 0xFFFF) as usize, (c >> 16) as usize);
                        debug_assert!(ox + window <= w && oy + window <= self.height);
                        let mut resp = 0i64;
                        for r in stump.feature.rects() {
                            resp += r.weight as i64
                                * rect_sum(
                                    ox,
                                    oy,
                                    r.x as usize,
                                    r.y as usize,
                                    r.w as usize,
                                    r.h as usize,
                                );
                        }
                        sums[li] += if (resp as i32) < stump.threshold {
                            stump.left
                        } else {
                            stump.right
                        };
                        // Scattered corners: 4 uncoalesced 4-byte reads
                        // per rectangle per lane.
                        m_global += 16 * nrects;
                    }
                    m_alu += 4 * nrects + 6;
                }
                let mut passed = 0usize;
                let mut failed = 0usize;
                for (li, i) in (ws..we).enumerate() {
                    if !lane_alive[li] {
                        continue;
                    }
                    scores[i] += sums[li] - stage.threshold;
                    if sums[li] >= stage.threshold {
                        depth[i] = si as u32 + 1;
                        passed += 1;
                    } else {
                        lane_alive[li] = false;
                        alive[i] = 0;
                        failed += 1;
                    }
                }
                m_branches += 1;
                m_alu += 3;
                if passed > 0 && failed > 0 {
                    m_divergent += 1;
                }
            }
            ws = we;
        }

        ctx.meter.constant(m_const);
        ctx.meter.global_load(m_global);
        // Work-list bookkeeping reads/writes.
        ctx.meter.global_load(4 * (end - base) as u64);
        ctx.meter.global_store(12 * (end - base) as u64);
        ctx.meter.alu(m_alu);
        ctx.meter.branches(m_branches, m_divergent);
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        // scores/alive are read-modify-write; depth is write-only here but
        // carries prior segments' values in unwritten lanes (WAW ordering).
        set.reads(self.integral)
            .reads(self.coords)
            .reads(self.scores)
            .reads(self.alive)
            .writes(self.scores)
            .writes(self.alive)
            .writes(self.depth);
    }
}

/// Stream-compaction kernel: rebuilds the dense work list from survivor
/// flags (functionally a sequential scan; metered as a two-pass scan +
/// scatter over the list).
pub struct CompactKernel {
    pub coords_in: DevBuf<u32>,
    pub scores_in: DevBuf<f32>,
    pub depth_in: DevBuf<u32>,
    pub alive: DevBuf<u32>,
    pub n: usize,
    pub coords_out: DevBuf<u32>,
    pub scores_out: DevBuf<f32>,
    pub depth_out: DevBuf<u32>,
    /// Single-element output: number of survivors.
    pub count_out: DevBuf<u32>,
}

impl CompactKernel {
    pub const THREADS: u32 = 256;

    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::linear(self.n.max(1), Self::THREADS)
    }
}

impl Kernel for CompactKernel {
    fn name(&self) -> &'static str {
        "compact"
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        // Functional compaction is done once, by block 0, to keep the
        // result deterministic; the metering models every block's share
        // of a parallel scan + scatter.
        let tpb = Self::THREADS as usize;
        let base = ctx.block_idx.x as usize * tpb;
        let end = (base + tpb).min(self.n);
        if ctx.block_idx.x == 0 {
            let coords = ctx.mem.read(self.coords_in);
            let scores = ctx.mem.read(self.scores_in);
            let depth = ctx.mem.read(self.depth_in);
            let alive = ctx.mem.read(self.alive);
            let mut co = ctx.mem.write(self.coords_out);
            let mut so = ctx.mem.write(self.scores_out);
            let mut dk = ctx.mem.write(self.depth_out);
            let mut k = 0usize;
            for i in 0..self.n {
                if alive[i] != 0 {
                    co[k] = coords[i];
                    so[k] = scores[i];
                    dk[k] = depth[i];
                    k += 1;
                }
            }
            ctx.mem.write(self.count_out)[0] = k as u32;
        }
        if base < end {
            let covered = (end - base) as u64;
            let warps = covered.div_ceil(ctx.warp_size() as u64);
            ctx.meter.global_load(13 * covered);
            ctx.meter.global_store(12 * covered / 2); // ~half survive early on
            ctx.meter.shared(4 * warps);
            ctx.meter.alu(6 * warps);
            ctx.syncthreads();
        }
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        set.reads(self.coords_in)
            .reads(self.scores_in)
            .reads(self.depth_in)
            .reads(self.alive)
            .writes(self.coords_out)
            .writes(self.scores_out)
            .writes(self.depth_out)
            .writes(self.count_out);
    }
}

/// Run one pyramid level with the rearrangement strategy: segments of
/// `stages_per_segment` stages, compaction between segments. Returns the
/// timeline and the final (depth per initial window, in work-list order
/// irrelevant — callers use the returned accept count).
pub fn run_rearranged_level(
    gpu: &mut Gpu,
    cascade: &Cascade,
    integral: DevBuf<u32>,
    width: usize,
    height: usize,
    stages_per_segment: usize,
    stream: StreamId,
) -> Result<(usize, Vec<Timeline>), DetectorError> {
    if stages_per_segment == 0 {
        return Err(DetectorError::InvalidConfig {
            reason: "stages_per_segment must be at least 1",
        });
    }
    let cascade = Arc::new(quantize_cascade(cascade));
    let window = cascade.window as usize;
    if width < window || height < window {
        return Ok((0, Vec::new()));
    }

    // Initial dense work list: every valid origin.
    let mut coords_host = Vec::with_capacity((width - window + 1) * (height - window + 1));
    for oy in 0..=height - window {
        for ox in 0..=width - window {
            coords_host.push((oy as u32) << 16 | ox as u32);
        }
    }
    let mut n = coords_host.len();
    let mut coords = gpu.mem.upload(&coords_host);
    let mut scores = gpu.mem.alloc::<f32>(n);
    let mut depth = gpu.mem.alloc::<u32>(n);
    let mut timelines = Vec::new();

    let mut stage = 0usize;
    while stage < cascade.stages.len() && n > 0 {
        let stage_end = (stage + stages_per_segment).min(cascade.stages.len());
        let alive = gpu.mem.upload(&vec![1u32; n]);
        let seg = CascadeSegmentKernel {
            integral,
            width,
            height,
            coords,
            n_windows: n,
            scores,
            alive,
            depth,
            stage_begin: stage,
            stage_end,
            cascade: Arc::clone(&cascade),
        };
        let seg_cfg = seg.config();
        if let Err(source) = gpu.launch(seg, seg_cfg, stream) {
            gpu.cancel_pending();
            gpu.mem.free(alive);
            gpu.mem.free(coords);
            gpu.mem.free(scores);
            gpu.mem.free(depth);
            return Err(DetectorError::Launch {
                kernel: "cascade_segment",
                level: None,
                frame: None,
                source,
            });
        }

        // Compact survivors into fresh buffers.
        let coords_out = gpu.mem.alloc::<u32>(n);
        let scores_out = gpu.mem.alloc::<f32>(n);
        let depth_out = gpu.mem.alloc::<u32>(n);
        let count_out = gpu.mem.alloc::<u32>(1);
        let compact = CompactKernel {
            coords_in: coords,
            scores_in: scores,
            depth_in: depth,
            alive,
            n,
            coords_out,
            scores_out,
            depth_out,
            count_out,
        };
        let compact_cfg = compact.config();
        if let Err(source) = gpu.launch(compact, compact_cfg, stream) {
            gpu.cancel_pending();
            gpu.mem.free(alive);
            gpu.mem.free(coords);
            gpu.mem.free(scores);
            gpu.mem.free(depth);
            gpu.mem.free(coords_out);
            gpu.mem.free(scores_out);
            gpu.mem.free(depth_out);
            gpu.mem.free(count_out);
            return Err(DetectorError::Launch {
                kernel: "compact",
                level: None,
                frame: None,
                source,
            });
        }
        // The relaunch boundary: the host must read the survivor count
        // before sizing the next grid, so the device drains here.
        timelines.push(gpu.synchronize());
        let survivors = gpu.mem.read(count_out)[0] as usize;

        gpu.mem.free(alive);
        gpu.mem.free(coords);
        gpu.mem.free(scores);
        gpu.mem.free(depth);
        gpu.mem.free(count_out);
        coords = coords_out;
        scores = scores_out;
        depth = depth_out;
        n = survivors;
        stage = stage_end;
    }

    gpu.mem.free(coords);
    gpu.mem.free(scores);
    gpu.mem.free(depth);
    Ok((n, timelines))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode};
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};
    use fd_imgproc::{GrayImage, IntegralImage};

    fn cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("t", 24);
        for _ in 0..4 {
            c.stages.push(Stage {
                stumps: vec![Stump { feature: f, threshold: 4096, left: -1.0, right: 1.0 }],
                threshold: 0.5,
            });
        }
        quantize_cascade(&c)
    }

    fn inclusive_integral(img: &GrayImage) -> Vec<u32> {
        let ii = IntegralImage::from_gray(img);
        let (w, h) = (img.width(), img.height());
        let mut out = vec![0u32; w * h];
        for y in 0..h {
            for x in 0..w {
                out[y * w + x] = ii.at(x + 1, y + 1);
            }
        }
        out
    }

    #[test]
    fn rearranged_accepts_match_blocked_kernel_counts() {
        let img = GrayImage::from_fn(64, 48, |x, y| {
            if (20..30).contains(&x) && (8..40).contains(&y) {
                0.0
            } else if (30..40).contains(&x) && (8..40).contains(&y) {
                255.0
            } else {
                ((x * 11 + y * 7) % 128) as f32
            }
        });
        let c = cascade();

        // Reference: CPU count of accepted windows.
        let ii = IntegralImage::from_gray(&img);
        let mut expected = 0usize;
        for oy in 0..=48 - 24 {
            for ox in 0..=64 - 24 {
                if c.eval_window(&ii, ox, oy).depth == c.depth() {
                    expected += 1;
                }
            }
        }
        assert!(expected > 0, "test pattern must produce accepts");

        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let integral = gpu.mem.upload(&inclusive_integral(&img));
        let s = gpu.create_stream();
        let (accepts, timelines) =
            run_rearranged_level(&mut gpu, &c, integral, 64, 48, 2, s).unwrap();
        assert_eq!(accepts, expected);
        assert_eq!(timelines.len(), 2, "4 stages / 2 per segment = 2 relaunches");
    }

    #[test]
    fn segment_size_one_still_terminates_and_agrees() {
        let img = GrayImage::from_fn(48, 48, |x, y| ((x * 13 + y * 29) % 255) as f32);
        let c = cascade();
        let ii = IntegralImage::from_gray(&img);
        let mut expected = 0usize;
        for oy in 0..=48 - 24 {
            for ox in 0..=48 - 24 {
                if c.eval_window(&ii, ox, oy).depth == c.depth() {
                    expected += 1;
                }
            }
        }
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let integral = gpu.mem.upload(&inclusive_integral(&img));
        let s = gpu.create_stream();
        let (accepts, _) = run_rearranged_level(&mut gpu, &c, integral, 48, 48, 1, s).unwrap();
        assert_eq!(accepts, expected);
    }

    #[test]
    fn memory_is_reclaimed() {
        let img = GrayImage::from_fn(48, 48, |x, _| (x * 5) as f32);
        let c = cascade();
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let integral = gpu.mem.upload(&inclusive_integral(&img));
        let before = gpu.mem.live_bytes();
        let s = gpu.create_stream();
        let _ = run_rearranged_level(&mut gpu, &c, integral, 48, 48, 2, s).unwrap();
        assert_eq!(gpu.mem.live_bytes(), before, "work lists must be freed");
    }
}
