//! The cascade-evaluation kernel (paper §III-C) — the pipeline's most
//! resource-intensive stage and the subject of the paper's optimization
//! study.
//!
//! Geometry follows the paper exactly: the integral image is divided into
//! 24x24 chunks, one thread block per chunk, one thread per sliding-window
//! origin. Each thread cooperatively stages **4 integral pixels** into the
//! block's shared 48x48 tile (Eqs. 1-4 with `n = m = 24`), three of which
//! belong to regions explored by neighbouring blocks' windows; a barrier
//! then opens SIMT evaluation.
//!
//! Stump records are fetched from constant memory in their compressed
//! 3-word form (§III-C: thresholds/coordinates/dimensions/weights packed
//! into 16-bit and 5-bit fields) — since all threads of a warp read the
//! same record at the same time, each read is a single broadcast. Memory
//! accounting matches the paper: a 2-rectangle feature costs 18 accesses
//! (8 shared tile reads + 10 attribute halfwords), a 3-rectangle feature
//! 27.
//!
//! Early rejection is warp-granular: a warp keeps iterating stages while
//! any lane is still alive; a stage-exit branch on which the active lanes
//! disagree is metered as divergent (the statistic behind the paper's
//! 98.9 % branch-efficiency figure). Every thread writes the deepest stage
//! it reached to the output array, which the display stage thresholds.

use std::sync::Arc;

use fd_gpu::{BlockCtx, ConstPtr, DevBuf, Kernel, LaunchConfig};
use fd_haar::encode::quantize_cascade;
use fd_haar::Cascade;

/// A stump precompiled for tile-relative evaluation: per rectangle the
/// four corner offsets within the 48-wide shared tile, plus its weight.
#[derive(Debug, Clone, Copy)]
struct PreStump {
    /// Corner offsets `[dd, du, ld, lu]` per rectangle.
    offs: [[u32; 4]; 4],
    weights: [i32; 4],
    nrects: u32,
    threshold: i32,
    left: f32,
    right: f32,
}

#[derive(Debug, Clone)]
struct PreStage {
    stumps: Vec<PreStump>,
    threshold: f32,
}

/// One launch per pyramid level.
pub struct CascadeKernel {
    /// Inclusive integral image of the level (`width x height`).
    pub integral: DevBuf<u32>,
    pub width: usize,
    pub height: usize,
    /// Deepest stage reached, per pixel.
    pub depth_out: DevBuf<u32>,
    /// Accumulated stage margins, per pixel (detection confidence).
    pub score_out: DevBuf<f32>,
    /// The compressed cascade resident in constant memory (metering and
    /// size accounting; the functional copy below decodes to the same
    /// values — enforced in [`CascadeKernel::new`]).
    pub const_ptr: ConstPtr,
    stages: Arc<Vec<PreStage>>,
    window: usize,
    /// Ablation: constant-memory words fetched per stump record
    /// (3 = the paper's compressed encoding; 10 = naive uncompressed
    /// records: per-rectangle coordinates, dimensions and weights plus
    /// threshold and leaves as full words).
    pub const_words_per_stump: u64,
    /// Ablation: when `false`, rectangle corners are fetched from global
    /// memory instead of the cooperative shared tile (4 scattered 4-byte
    /// reads per rectangle per lane), modelling a kernel without the
    /// Eqs. 1-4 staging.
    pub use_shared_tile: bool,
    /// Block height in window rows (the autotuner's shape axis). The
    /// block stays [`Self::BLOCK`] columns wide — the tile row stride the
    /// precompiled stump offsets assume — and covers `block_h` rows of
    /// window origins with a `48 x (block_h + 24)` shared tile.
    block_h: u32,
}

impl CascadeKernel {
    /// Threads per block side; one thread per window origin in a
    /// `BLOCK x BLOCK` chunk.
    pub const BLOCK: u32 = 24;
    /// Shared tile side: `2 * BLOCK` (Eqs. 1-4).
    pub const TILE: u32 = 48;
    /// Shared-memory request for the tile.
    pub const SHARED_BYTES: u32 = Self::TILE * Self::TILE * 4;
    /// Block heights the autotuner may pick from, default first. All
    /// keep whole warps (`24 * h` divisible by 32) so warp lane
    /// composition — and with it divergence metering and every output
    /// byte — is identical across the family.
    pub const BLOCK_HEIGHTS: [u32; 5] = [24, 20, 16, 12, 8];

    /// Precompile `cascade` for this level. The cascade must already be
    /// quantized to the constant-memory grid (so the functional results
    /// equal what the device would compute from `const_ptr`).
    pub fn new(
        cascade: &Cascade,
        integral: DevBuf<u32>,
        width: usize,
        height: usize,
        depth_out: DevBuf<u32>,
        score_out: DevBuf<f32>,
        const_ptr: ConstPtr,
    ) -> Self {
        assert_eq!(cascade.window, Self::BLOCK, "kernel is specialized for 24-px windows");
        debug_assert_eq!(
            quantize_cascade(cascade),
            *cascade,
            "cascade must be pre-quantized to the constant-memory grid"
        );
        let tile_w = Self::TILE;
        let stages = cascade
            .stages
            .iter()
            .map(|st| PreStage {
                threshold: st.threshold,
                stumps: st
                    .stumps
                    .iter()
                    .map(|s| {
                        let mut offs = [[0u32; 4]; 4];
                        let mut weights = [0i32; 4];
                        for (i, r) in s.feature.rects().iter().enumerate() {
                            let (rx, ry) = (r.x as u32, r.y as u32);
                            let (rw, rh) = (r.w as u32, r.h as u32);
                            offs[i] = [
                                (ry + rh) * tile_w + rx + rw,
                                ry * tile_w + rx + rw,
                                (ry + rh) * tile_w + rx,
                                ry * tile_w + rx,
                            ];
                            weights[i] = r.weight as i32;
                        }
                        PreStump {
                            offs,
                            weights,
                            nrects: s.feature.rects().len() as u32,
                            threshold: s.threshold,
                            left: s.left,
                            right: s.right,
                        }
                    })
                    .collect(),
            })
            .collect();
        Self {
            integral,
            width,
            height,
            depth_out,
            score_out,
            const_ptr,
            stages: Arc::new(stages),
            window: Self::BLOCK as usize,
            const_words_per_stump: 3,
            use_shared_tile: true,
            block_h: Self::BLOCK,
        }
    }

    /// Ablation constructor: naive uncompressed constant-memory records.
    pub fn with_uncompressed_records(mut self) -> Self {
        self.const_words_per_stump = 10;
        self
    }

    /// Ablation constructor: skip the shared-memory tile staging.
    pub fn without_shared_tile(mut self) -> Self {
        self.use_shared_tile = false;
        self
    }

    /// Re-tile to `block_h` window rows per block (width stays
    /// [`Self::BLOCK`]). Must be one of [`Self::BLOCK_HEIGHTS`]' legal
    /// heights: `1..=24` with `24 * block_h` a warp multiple.
    pub fn with_block_h(mut self, block_h: u32) -> Self {
        assert!(
            (1..=Self::BLOCK).contains(&block_h) && (Self::BLOCK * block_h).is_multiple_of(32),
            "block_h must be in 1..=24 with 24*block_h a warp multiple, got {block_h}"
        );
        self.block_h = block_h;
        self
    }

    /// Shared-tile bytes for a given block height: `48 x (h + 24)` u32s.
    fn shared_bytes_for(block_h: u32) -> u32 {
        Self::TILE * (block_h + Self::BLOCK) * 4
    }

    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::tile2d(self.width, self.height, Self::BLOCK, self.block_h)
            .with_shared_mem(Self::shared_bytes_for(self.block_h))
    }

    pub fn n_stages(&self) -> u32 {
        self.stages.len() as u32
    }
}

impl Kernel for CascadeKernel {
    fn name(&self) -> &'static str {
        "cascade_eval"
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let b = Self::BLOCK as usize;
        let bh = self.block_h as usize;
        let tile_w = Self::TILE as usize;
        let tile_h = bh + b;
        let bx = ctx.block_idx.x as usize * b;
        let by = ctx.block_idx.y as usize * bh;
        let (w, h) = (self.width, self.height);

        // ---- Cooperative tile load (Eqs. 1-4): the block stages the
        // `48 x (block_h + 24)` neighbourhood its windows touch. At the
        // default square shape thread (x, y) brings the four pixels
        // (x,y), (x+n,y), (x,y+m), (x+n,y+m); narrower blocks spread the
        // same entries over fewer threads. Tile (0,0) maps to integral
        // entry (bx-1, by-1); entries left/above the image are zero.
        let mut tile = ctx.shared_alloc_u32(tile_w * tile_h);
        {
            let integral = ctx.mem.read(self.integral);
            for ty in 0..tile_h {
                let gy = by as isize + ty as isize - 1;
                for tx in 0..tile_w {
                    let gx = bx as isize + tx as isize - 1;
                    tile[ty * tile_w + tx] = if gx < 0 || gy < 0 || gx >= w as isize || gy >= h as isize
                    {
                        0
                    } else {
                        integral[gy as usize * w + gx as usize]
                    };
                }
            }
        }
        // Coalesced 4-byte loads covering the tile + the matching shared
        // stores (whole-warp transactions, `loads_per_thread` rounds).
        let threads = (b * bh) as u64;
        let warp = ctx.warp_size() as u64;
        let block_warps = threads.div_ceil(warp);
        if self.use_shared_tile {
            let tile_entries = (tile_w * tile_h) as u64;
            ctx.meter.global_load(4 * tile_entries);
            ctx.meter.shared(tile_entries.div_ceil(threads) * block_warps);
            ctx.syncthreads();
        }

        // ---- Warp-granular cascade evaluation.
        let mut depth_out = ctx.mem.write(self.depth_out);
        let mut score_out = ctx.mem.write(self.score_out);

        // Local metering accumulators (flushed once per block).
        let mut m_const = 0u64;
        let mut m_shared = 0u64;
        let mut m_global_scatter = 0u64;
        let mut m_alu = 0u64;
        let mut m_branches = 0u64;
        let mut m_divergent = 0u64;

        let n_stages = self.stages.len();
        ctx.for_each_warp(|_, lanes| {
            let lane_count = lanes.len();
            let mut active = [false; 32];
            let mut depth = [0u32; 32];
            let mut score = [0.0f32; 32];
            let mut done_score = [0.0f32; 32];
            let mut n_active = 0usize;
            for (li, t) in lanes.clone().enumerate() {
                let tx = (t as usize) % b;
                let ty = (t as usize) / b;
                let ox = bx + tx;
                let oy = by + ty;
                active[li] = ox + self.window <= w && oy + self.window <= h;
                if active[li] {
                    n_active += 1;
                }
            }
            if n_active > 0 {
                'stages: for (si, stage) in self.stages.iter().enumerate() {
                    let mut sums = [0.0f32; 32];
                    for stump in &stage.stumps {
                        // Stump record broadcast from constant memory
                        // (3 words compressed, 10 uncompressed).
                        m_const += self.const_words_per_stump;
                        if self.use_shared_tile {
                            // Tile reads: 4 per rectangle per lane; one
                            // transaction per access step for the warp.
                            m_shared += 4 * stump.nrects as u64;
                        } else {
                            // Scattered global reads: 4 corners per
                            // rectangle per active lane, uncoalesced.
                            m_global_scatter += 16 * stump.nrects as u64 * n_active as u64;
                        }
                        m_alu += 4 * stump.nrects as u64 + 6;
                        // Uniform loop-control branch.
                        m_branches += 1;
                        for (li, t) in lanes.clone().enumerate() {
                            if !active[li] {
                                continue;
                            }
                            let tx = (t as usize) % b;
                            let ty = (t as usize) / b;
                            let base = ty * tile_w + tx;
                            let mut resp = 0i64;
                            for r in 0..stump.nrects as usize {
                                let o = &stump.offs[r];
                                let s = tile[base + o[0] as usize] as i64
                                    - tile[base + o[1] as usize] as i64
                                    - tile[base + o[2] as usize] as i64
                                    + tile[base + o[3] as usize] as i64;
                                resp += stump.weights[r] as i64 * s;
                            }
                            sums[li] += if (resp as i32) < stump.threshold {
                                stump.left
                            } else {
                                stump.right
                            };
                        }
                    }
                    // Stage-exit branch.
                    let mut passed = 0usize;
                    let mut failed = 0usize;
                    for li in 0..lane_count {
                        if !active[li] {
                            continue;
                        }
                        score[li] += sums[li] - stage.threshold;
                        if sums[li] >= stage.threshold {
                            depth[li] = si as u32 + 1;
                            passed += 1;
                        } else {
                            active[li] = false;
                            done_score[li] = score[li];
                            failed += 1;
                        }
                    }
                    m_branches += 1;
                    m_alu += 3;
                    if passed > 0 && failed > 0 {
                        m_divergent += 1;
                    }
                    if passed == 0 {
                        break 'stages;
                    }
                }
            }
            // Write back depth and score for the warp's lanes.
            for (li, t) in lanes.clone().enumerate() {
                let tx = (t as usize) % b;
                let ty = (t as usize) / b;
                let ox = bx + tx;
                let oy = by + ty;
                if ox >= w || oy >= h {
                    continue;
                }
                let final_score = if active[li] { score[li] } else { done_score[li] };
                let valid = ox + self.window <= w && oy + self.window <= h;
                depth_out[oy * w + ox] = if valid { depth[li] } else { 0 };
                score_out[oy * w + ox] =
                    if valid { final_score } else { f32::NEG_INFINITY };
            }
            let _ = n_stages;
        });

        ctx.meter.constant(m_const);
        ctx.meter.shared(m_shared);
        ctx.meter.global_load(m_global_scatter);
        ctx.meter.alu(m_alu);
        ctx.meter.branches(m_branches, m_divergent);
        // Depth + score stores: 8 bytes per covered pixel.
        let covered_w = (w - bx).min(b);
        let covered_h = (h - by).min(bh);
        ctx.meter.global_store(8 * (covered_w * covered_h) as u64);
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        set.reads(self.integral).writes(self.depth_out).writes(self.score_out);
    }

    fn registers_per_thread(&self) -> u32 {
        // The footprint class of the real sm_20 kernel: window origin,
        // running score, stump decode scratch and the tile base pointer
        // stay live across the stage loop. High enough that narrow
        // re-tilings become register-bound before the block cap.
        22
    }

    fn shape_family(&self) -> Option<fd_gpu::ShapeFamily> {
        let shapes = Self::BLOCK_HEIGHTS
            .iter()
            .map(|&bh| {
                let cfg = LaunchConfig::tile2d(self.width, self.height, Self::BLOCK, bh)
                    .with_shared_mem(Self::shared_bytes_for(bh));
                let tile_entries = (Self::TILE * (bh + Self::BLOCK)) as f64;
                let threads = (Self::BLOCK * bh) as f64;
                fd_gpu::ShapeCandidate {
                    grid: cfg.grid,
                    block: cfg.block,
                    shared_mem_bytes: cfg.shared_mem_bytes,
                    registers_per_thread: self.registers_per_thread(),
                    // Per-window stump work is shape-invariant.
                    issue_per_thread: 12.0,
                    // Halo amplification: every block band re-reads a
                    // 24-row apron, so narrower bands pay more tile
                    // bytes per covered window (+8 B depth/score out).
                    mem_bytes_per_thread: 4.0 * tile_entries / threads + 8.0,
                }
            })
            .collect();
        Some(fd_gpu::ShapeFamily { kernel: self.name(), shapes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode, Gpu};
    use fd_haar::encode::encode_cascade;
    use fd_haar::{FeatureKind, HaarFeature, Stage, Stump};
    use fd_imgproc::{GrayImage, IntegralImage};

    /// Build a quantized single-stage contrast cascade.
    fn contrast_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("t", 24);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 1024, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 1024, left: -1.0, right: 1.0 }],
            threshold: 0.5,
        });
        quantize_cascade(&c)
    }

    /// Device inclusive integral from a host image.
    fn device_integral(img: &GrayImage) -> Vec<u32> {
        let ii = IntegralImage::from_gray(img);
        let (w, h) = (img.width(), img.height());
        let mut out = vec![0u32; w * h];
        for y in 0..h {
            for x in 0..w {
                out[y * w + x] = ii.at(x + 1, y + 1);
            }
        }
        out
    }

    fn run_cascade(c: &Cascade, img: &GrayImage) -> (Vec<u32>, Vec<f32>, fd_gpu::Timeline) {
        let (w, h) = (img.width(), img.height());
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let integral = gpu.mem.upload(&device_integral(img));
        let depth = gpu.mem.alloc::<u32>(w * h);
        let score = gpu.mem.alloc::<f32>(w * h);
        let cp = gpu.const_upload(&encode_cascade(c));
        let k = CascadeKernel::new(c, integral, w, h, depth, score, cp);
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        let t = gpu.synchronize();
        (gpu.mem.download(depth), gpu.mem.download(score), t)
    }

    #[test]
    fn matches_cpu_reference_on_random_image() {
        let img = GrayImage::from_fn(64, 48, |x, y| {
            ((x as u32 * 37 + y as u32 * 101).wrapping_mul(2654435761) >> 24) as f32
        });
        let c = contrast_cascade();
        let (depth, score, _) = run_cascade(&c, &img);
        let ii = IntegralImage::from_gray(&img);
        for oy in 0..=48 - 24 {
            for ox in 0..=64 - 24 {
                let r = c.eval_window(&ii, ox, oy);
                assert_eq!(depth[oy * 64 + ox], r.depth, "depth at ({ox},{oy})");
                assert!(
                    (score[oy * 64 + ox] - r.score).abs() < 1e-4,
                    "score at ({ox},{oy}): gpu {} cpu {}",
                    score[oy * 64 + ox],
                    r.score
                );
            }
        }
    }

    #[test]
    fn invalid_origins_get_zero_depth() {
        let img = GrayImage::from_fn(40, 40, |x, _| if x < 20 { 0.0 } else { 255.0 });
        let c = contrast_cascade();
        let (depth, score, _) = run_cascade(&c, &img);
        // Origins beyond (w-24, h-24) are invalid.
        assert_eq!(depth[39], 0);
        assert_eq!(score[39], f32::NEG_INFINITY);
        assert_eq!(depth[39 * 40 + 39], 0);
    }

    #[test]
    fn detects_the_contrast_pattern_it_was_built_for() {
        // Strong left-dark/right-bright edge at the window the feature
        // expects: depth must reach 2 (both stages) at origin (0, 0).
        let img = GrayImage::from_fn(24, 24, |x, _| if x < 12 { 0.0 } else { 255.0 });
        let c = contrast_cascade();
        let (depth, _, _) = run_cascade(&c, &img);
        assert_eq!(depth[0], 2);
    }

    #[test]
    fn meters_paper_access_counts_per_stump() {
        // One 2-rect stump on a flat 47x47 image: block (0,0) has all 576
        // window origins valid (47 - 24 = 23), the other three blocks of
        // the 2x2 grid have none, so exactly 18 warps evaluate the stage.
        let img = GrayImage::from_fn(47, 47, |_, _| 100.0);
        let mut c = contrast_cascade();
        c.stages.truncate(1);
        let (_, _, t) = run_cascade(&c, &img);
        let counters = &t.events[0].counters;
        // 18 active warps, 1 stump: 3 constant broadcasts each.
        assert_eq!(counters.const_broadcasts, 18 * 3);
        // Branches: per active warp 1 stump loop + 1 stage exit.
        assert_eq!(counters.branches, 36);
        // Flat image, warp-uniform outcome: no divergence.
        assert_eq!(counters.divergent_branches, 0);
    }

    #[test]
    fn divergence_is_detected_when_lanes_disagree() {
        // A sharp edge inside one warp's windows: some pass, some fail.
        let img = GrayImage::from_fn(48, 25, |x, _| if x < 18 { 0.0 } else { 255.0 });
        let mut c = contrast_cascade();
        c.stages.truncate(1);
        let (depth, _, t) = run_cascade(&c, &img);
        // Some windows accept (edge within feature) and some reject.
        let accepted: u32 = depth.iter().sum();
        assert!(accepted > 0, "at least one window must accept");
        assert!(depth.contains(&0));
        assert!(t.events[0].counters.divergent_branches > 0, "expected divergence");
        // Branch efficiency still high (most warps are uniform).
        assert!(t.events[0].counters.branch_efficiency() > 0.5);
    }

    #[test]
    fn every_block_height_is_byte_identical_to_the_default() {
        let img = GrayImage::from_fn(70, 53, |x, y| {
            ((x as u32 * 73 + y as u32 * 149).wrapping_mul(2654435761) >> 24) as f32
        });
        let c = contrast_cascade();
        let run = |bh: u32| {
            let (w, h) = (img.width(), img.height());
            let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
            let integral = gpu.mem.upload(&device_integral(&img));
            let depth = gpu.mem.alloc::<u32>(w * h);
            let score = gpu.mem.alloc::<f32>(w * h);
            let cp = gpu.const_upload(&encode_cascade(&c));
            let k = CascadeKernel::new(&c, integral, w, h, depth, score, cp).with_block_h(bh);
            let cfg = k.config();
            gpu.launch_default(k, cfg).unwrap();
            gpu.synchronize();
            let bits: Vec<u32> = gpu.mem.download(score).iter().map(|s| s.to_bits()).collect();
            (gpu.mem.download(depth), bits)
        };
        let base = run(CascadeKernel::BLOCK);
        for bh in CascadeKernel::BLOCK_HEIGHTS {
            assert_eq!(run(bh), base, "block_h {bh} must not change any output byte");
        }
    }

    #[test]
    #[should_panic(expected = "warp multiple")]
    fn rejects_partial_warp_block_heights() {
        let img = GrayImage::from_fn(24, 24, |_, _| 0.0);
        let c = contrast_cascade();
        let (w, h) = (img.width(), img.height());
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let integral = gpu.mem.upload(&device_integral(&img));
        let depth = gpu.mem.alloc::<u32>(w * h);
        let score = gpu.mem.alloc::<f32>(w * h);
        let cp = gpu.const_upload(&encode_cascade(&c));
        let _ = CascadeKernel::new(&c, integral, w, h, depth, score, cp).with_block_h(10);
    }

    #[test]
    #[should_panic(expected = "24-px windows")]
    fn rejects_non_24px_cascades() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let c = Cascade::new("w32", 32);
        let b = gpu.mem.alloc::<u32>(1);
        let s = gpu.mem.alloc::<f32>(1);
        let cp = gpu.const_upload(&[0]);
        let _ = CascadeKernel::new(&c, b, 1, 1, b, s, cp);
    }
}
