//! Anti-aliasing filter kernel (paper §III-A, "Filtering" stage).
//!
//! A 3x3 binomial smoothing (separable 1/4-1/2-1/4) applied to every
//! pyramid level after scaling. The device version stages an 18x18 halo
//! tile in shared memory per 16x16 block, so each input pixel is read from
//! DRAM once; the functional body matches
//! `fd_imgproc::filter::antialias_3tap` bit-for-bit (clamped borders).

use fd_gpu::{BlockCtx, DevBuf, Kernel, LaunchConfig};

pub struct FilterKernel {
    pub src: DevBuf<f32>,
    pub dst: DevBuf<f32>,
    pub width: usize,
    pub height: usize,
}

impl FilterKernel {
    pub const BLOCK: u32 = 16;
    /// Shared-memory request: the (16+2)^2 halo tile.
    pub const SHARED_BYTES: u32 = 18 * 18 * 4;
    /// Autotunable tilings, default first: every variant keeps 256
    /// threads (the fused-chain contract) and only redistributes them, so
    /// each pixel is still computed independently from clamped source
    /// reads — outputs are byte-identical, only the halo overhead and
    /// residency change.
    pub const BLOCKS: [(u32, u32); 3] = [(16, 16), (32, 8), (8, 32)];

    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::tile2d(self.width, self.height, Self::BLOCK, Self::BLOCK)
            .with_shared_mem(Self::SHARED_BYTES)
    }

    /// Launch geometry for an alternate tiling from [`Self::BLOCKS`].
    pub fn config_for(&self, (bw, bh): (u32, u32)) -> LaunchConfig {
        LaunchConfig::tile2d(self.width, self.height, bw, bh)
            .with_shared_mem((bw + 2) * (bh + 2) * 4)
    }
}

impl Kernel for FilterKernel {
    fn name(&self) -> &'static str {
        "filter"
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        // Block shape comes from the launch config (the autotuner may
        // re-tile); each output pixel only reads its clamped 3x3 source
        // neighbourhood, so any tiling computes identical bytes.
        let bw = ctx.block_dim.x as usize;
        let bh = ctx.block_dim.y as usize;
        let bx = ctx.block_idx.x as usize * bw;
        let by = ctx.block_idx.y as usize * bh;
        let (w, h) = (self.width, self.height);

        // Stage the (bw+2)x(bh+2) halo tile (clamped at image borders).
        let tile_w = bw + 2;
        let tile_h = bh + 2;
        let mut tile = ctx.shared_alloc_f32(tile_w * tile_h);
        {
            let src = ctx.mem.read(self.src);
            for ty in 0..tile_h {
                let gy = (by as isize + ty as isize - 1).clamp(0, h as isize - 1) as usize;
                for tx in 0..tile_w {
                    let gx = (bx as isize + tx as isize - 1).clamp(0, w as isize - 1) as usize;
                    tile[ty * tile_w + tx] = src[gy * w + gx];
                }
            }
        }
        ctx.syncthreads();

        let mut dst = ctx.mem.write(self.dst);
        let mut covered = 0u64;
        for ty in 0..bh {
            let y = by + ty;
            if y >= h {
                continue;
            }
            for tx in 0..bw {
                let x = bx + tx;
                if x >= w {
                    continue;
                }
                // Separable binomial: rows then columns over the tile.
                let t = |dx: usize, dy: usize| tile[(ty + dy) * tile_w + (tx + dx)];
                let row = |dy: usize| 0.25 * t(0, dy) + 0.5 * t(1, dy) + 0.25 * t(2, dy);
                dst[y * w + x] = 0.25 * row(0) + 0.5 * row(1) + 0.25 * row(2);
                covered += 1;
            }
        }
        drop(dst);

        let warp = ctx.warp_size() as u64;
        let warps = covered.div_ceil(warp);
        // Halo load: one coalesced read per tile element. Buffer-tagged
        // so a fused launch credits fusion-local traffic to on-chip rates.
        ctx.global_load_buf(self.src, (tile_w * tile_h * 4) as u64);
        ctx.meter.shared((tile_w * tile_h) as u64 / 8);
        // Compute: 9 shared reads + ~10 FLOPs per pixel.
        ctx.meter.shared(9 * warps);
        ctx.meter.alu(10 * warps);
        ctx.global_store_buf(self.dst, 4 * covered);
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        set.reads(self.src).writes(self.dst);
    }

    fn fusion_traits(&self) -> Option<fd_gpu::FusionTraits> {
        Some(fd_gpu::FusionTraits {
            read_domain: (self.width, self.height),
            write_domain: (self.width, self.height),
            // Each block writes only its own tile (the halo is
            // read-side), so consumers may follow in the same launch.
            tile_local: true,
        })
    }

    fn shape_family(&self) -> Option<fd_gpu::ShapeFamily> {
        let shapes = Self::BLOCKS
            .iter()
            .map(|&(bw, bh)| {
                let cfg = self.config_for((bw, bh));
                let halo = ((bw + 2) * (bh + 2)) as f64;
                fd_gpu::ShapeCandidate {
                    grid: cfg.grid,
                    block: cfg.block,
                    shared_mem_bytes: cfg.shared_mem_bytes,
                    registers_per_thread: self.registers_per_thread(),
                    // 9 shared taps + ~10 FLOPs per pixel, any shape.
                    issue_per_thread: 19.0,
                    // Halo bytes amortized per covered pixel + the store.
                    mem_bytes_per_thread: 4.0 * halo / (bw * bh) as f64 + 4.0,
                }
            })
            .collect();
        Some(fd_gpu::ShapeFamily { kernel: self.name(), shapes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode, Gpu};
    use fd_imgproc::filter::antialias_3tap;
    use fd_imgproc::GrayImage;

    fn run_filter(src: &GrayImage) -> Vec<f32> {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let sbuf = gpu.mem.upload(src.as_slice());
        let dbuf = gpu.mem.alloc::<f32>(src.width() * src.height());
        let k = FilterKernel { src: sbuf, dst: dbuf, width: src.width(), height: src.height() };
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        gpu.synchronize();
        gpu.mem.download(dbuf)
    }

    #[test]
    fn matches_host_antialias_exactly() {
        let src = GrayImage::from_fn(50, 34, |x, y| ((x * 31 + y * 17) % 255) as f32);
        let out = run_filter(&src);
        let reference = antialias_3tap(&src);
        for (i, (a, b)) in out.iter().zip(reference.as_slice()).enumerate() {
            assert!((a - b).abs() < 1e-3, "pixel {i}: gpu {a} vs cpu {b}");
        }
    }

    #[test]
    fn preserves_constant_images() {
        let src = GrayImage::from_fn(20, 20, |_, _| 123.0);
        let out = run_filter(&src);
        for v in out {
            assert!((v - 123.0).abs() < 1e-4);
        }
    }

    #[test]
    fn requests_shared_memory_for_the_halo() {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Serial);
        let src = gpu.mem.alloc::<f32>(256);
        let dst = gpu.mem.alloc::<f32>(256);
        let k = FilterKernel { src, dst, width: 16, height: 16 };
        assert_eq!(k.config().shared_mem_bytes, 18 * 18 * 4);
    }
}
