//! Display kernel (paper §III-D).
//!
//! "Each element (x, y) of these arrays is an integer that represents the
//! deepest stage of the cascade reached during the evaluation process.
//! Therefore, the image region enclosed in a sliding window starting at
//! (x, y) would be considered as a face if the integer value stored there
//! equals the maximum depth of the cascade."
//!
//! The device pass thresholds the depth array into a hit mask, one launch
//! per scale, concurrently with the other scales' kernels. The host then
//! maps hits back to frame coordinates (multiplying by the level's
//! downscale factor, §III-D) and draws rectangles — see
//! [`crate::group`] and `fd_imgproc::draw`.

use fd_gpu::{BlockCtx, DevBuf, Kernel, LaunchConfig};

pub struct DisplayKernel {
    /// Deepest-stage array from the cascade kernel.
    pub depth: DevBuf<u32>,
    /// Hit mask output (1 where a face window was confirmed).
    pub hits: DevBuf<u32>,
    pub width: usize,
    pub height: usize,
    /// Cascade depth a window must reach to count as a face.
    pub required_depth: u32,
}

impl DisplayKernel {
    pub const THREADS: u32 = 256;

    pub fn config(&self) -> LaunchConfig {
        LaunchConfig::linear(self.width * self.height, Self::THREADS)
    }
}

impl Kernel for DisplayKernel {
    fn name(&self) -> &'static str {
        "display"
    }

    fn run_block(&self, ctx: &mut BlockCtx<'_>) {
        let n = self.width * self.height;
        let tpb = Self::THREADS as usize;
        let base = ctx.block_idx.x as usize * tpb;
        let end = (base + tpb).min(n);
        if base >= n {
            return;
        }
        let mut hit_count = 0u64;
        let mut warp_divergent = 0u64;
        let mut warps = 0u64;
        {
            let depth = ctx.mem.read(self.depth);
            let mut hits = ctx.mem.write(self.hits);
            for ws in (base..end).step_by(ctx.warp_size() as usize) {
                let we = (ws + ctx.warp_size() as usize).min(end);
                let mut lane_hits = 0u64;
                for i in ws..we {
                    let hit = depth[i] >= self.required_depth;
                    hits[i] = hit as u32;
                    lane_hits += hit as u64;
                }
                warps += 1;
                if lane_hits > 0 && lane_hits < (we - ws) as u64 {
                    warp_divergent += 1;
                }
                hit_count += lane_hits;
            }
        }
        let covered = (end - base) as u64;
        ctx.meter.global_load(4 * covered);
        ctx.meter.global_store(4 * covered);
        ctx.meter.alu(2 * warps);
        ctx.meter.branches(warps, warp_divergent);
        let _ = hit_count;
    }

    fn access(&self, set: &mut fd_gpu::AccessSet) {
        set.reads(self.depth).writes(self.hits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_gpu::{DeviceSpec, ExecMode, Gpu};

    fn run_display(depth: &[u32], w: usize, h: usize, req: u32) -> Vec<u32> {
        let mut gpu = Gpu::new(DeviceSpec::gtx470(), ExecMode::Concurrent);
        let d = gpu.mem.upload(depth);
        let hits = gpu.mem.alloc::<u32>(w * h);
        let k = DisplayKernel { depth: d, hits, width: w, height: h, required_depth: req };
        let cfg = k.config();
        gpu.launch_default(k, cfg).unwrap();
        gpu.synchronize();
        gpu.mem.download(hits)
    }

    #[test]
    fn thresholds_at_required_depth() {
        let depth = vec![0, 5, 24, 25, 25, 13];
        let hits = run_display(&depth, 6, 1, 25);
        assert_eq!(hits, vec![0, 0, 0, 1, 1, 0]);
    }

    #[test]
    fn required_depth_zero_accepts_all() {
        let depth = vec![0, 1, 2];
        let hits = run_display(&depth, 3, 1, 0);
        assert_eq!(hits, vec![1, 1, 1]);
    }

    #[test]
    fn covers_non_multiple_of_block_sizes() {
        let n = 300; // not a multiple of 256
        let depth: Vec<u32> = (0..n as u32).collect();
        let hits = run_display(&depth, n, 1, 150);
        assert_eq!(hits.iter().sum::<u32>(), 150);
    }
}
