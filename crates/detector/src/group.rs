//! Detection grouping (paper §VI-B).
//!
//! "For each face in an image, the proposed face detection pipeline
//! results in a large number of detection windows at slightly different
//! positions and scales."
//!
//! Grouping follows the paper: two detections overlap when
//! `S_eyes(d_i, d_j) < 0.5` (Eq. 6, the eye-distance metric); an iterative
//! process merges the most-overlapping pairs by averaging until no
//! overlapping pair remains. Groups below a neighbour threshold are
//! discarded as unstable single-window firings.

use fd_imgproc::{PointF, Rect};

/// Normalized eye positions within a detection window. The detector and
/// the synthetic ground truth share this convention
/// (`fd_imgproc::synth::EYE_LEFT` / `EYE_RIGHT`).
pub const EYE_LEFT_UV: (f64, f64) = fd_imgproc::synth::EYE_LEFT;
/// See [`EYE_LEFT_UV`].
pub const EYE_RIGHT_UV: (f64, f64) = fd_imgproc::synth::EYE_RIGHT;

/// One raw detection window mapped back to frame coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    pub rect: Rect,
    /// Accumulated cascade margin (confidence).
    pub score: f32,
    /// Pyramid level the window was found at.
    pub scale: usize,
}

impl Detection {
    /// Predicted eye centers from the window geometry.
    pub fn eyes(&self) -> (PointF, PointF) {
        let map = |(u, v): (f64, f64)| PointF {
            x: self.rect.x as f64 + u * self.rect.w as f64,
            y: self.rect.y as f64 + v * self.rect.h as f64,
        };
        (map(EYE_LEFT_UV), map(EYE_RIGHT_UV))
    }

    /// Inter-eye pixel distance implied by the window size.
    pub fn eye_distance(&self) -> f64 {
        (EYE_RIGHT_UV.0 - EYE_LEFT_UV.0) * self.rect.w as f64
    }
}

/// The paper's Eq. 6: normalized sum of eye displacement distances.
/// Smaller is a better match; `< 0.5` counts as overlapping.
pub fn s_eyes(a: &Detection, b: &Detection) -> f64 {
    let (al, ar) = a.eyes();
    let (bl, br) = b.eyes();
    let dle = al.distance(&bl);
    let dre = ar.distance(&br);
    let denom = a.eye_distance().min(b.eye_distance());
    if denom <= 0.0 {
        return f64::INFINITY;
    }
    (dle + dre) / denom
}

/// Eq. 6 evaluated between a detection and annotated eye positions.
pub fn s_eyes_to_truth(
    d: &Detection,
    truth_eyes: (PointF, PointF),
    truth_eye_distance: f64,
) -> f64 {
    let (dl, dr) = d.eyes();
    let dle = dl.distance(&truth_eyes.0);
    let dre = dr.distance(&truth_eyes.1);
    let denom = d.eye_distance().min(truth_eye_distance);
    if denom <= 0.0 {
        return f64::INFINITY;
    }
    (dle + dre) / denom
}

/// A merged group of overlapping detections.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedDetection {
    /// Averaged window.
    pub rect: Rect,
    /// Best (maximum) member score.
    pub score: f32,
    /// Number of raw windows merged into this group.
    pub neighbors: usize,
}

impl GroupedDetection {
    /// View as a [`Detection`] for metric computations.
    pub fn as_detection(&self) -> Detection {
        Detection { rect: self.rect, score: self.score, scale: 0 }
    }
}

#[derive(Debug, Clone)]
struct Cluster {
    // Running sums for averaging.
    sx: f64,
    sy: f64,
    sw: f64,
    sh: f64,
    n: usize,
    score: f32,
}

impl Cluster {
    fn from_detection(d: &Detection) -> Self {
        Self {
            sx: d.rect.x as f64,
            sy: d.rect.y as f64,
            sw: d.rect.w as f64,
            sh: d.rect.h as f64,
            n: 1,
            score: d.score,
        }
    }

    fn mean(&self) -> Detection {
        Detection {
            rect: Rect::new(
                (self.sx / self.n as f64).round() as i32,
                (self.sy / self.n as f64).round() as i32,
                (self.sw / self.n as f64).round().max(1.0) as u32,
                (self.sh / self.n as f64).round().max(1.0) as u32,
            ),
            score: self.score,
            scale: 0,
        }
    }

    fn absorb(&mut self, other: &Cluster) {
        self.sx += other.sx;
        self.sy += other.sy;
        self.sw += other.sw;
        self.sh += other.sh;
        self.n += other.n;
        self.score = self.score.max(other.score);
    }
}

/// Group raw detections by iteratively averaging the most-overlapping
/// pairs (S_eyes < `overlap_threshold`, paper uses 0.5), then drop groups
/// with fewer than `min_neighbors` members.
///
/// The exact best-pair iteration is cubic in the number of clusters, so
/// large raw sets (possible with heavily truncated cascades) first go
/// through a linear greedy pass that folds each detection into the first
/// cluster whose running mean it overlaps; the paper's iterative
/// averaging then runs over the resulting cluster means.
pub fn group_detections(
    detections: &[Detection],
    overlap_threshold: f64,
    min_neighbors: usize,
) -> Vec<GroupedDetection> {
    // Greedy pre-clustering keeps the exact phase tractable.
    const EXACT_LIMIT: usize = 192;
    let mut clusters: Vec<Cluster> = if detections.len() > EXACT_LIMIT {
        let mut acc: Vec<Cluster> = Vec::new();
        for d in detections {
            match acc
                .iter_mut()
                .find(|c| s_eyes(&c.mean(), d) < overlap_threshold)
            {
                Some(c) => c.absorb(&Cluster::from_detection(d)),
                None => acc.push(Cluster::from_detection(d)),
            }
        }
        acc
    } else {
        detections.iter().map(Cluster::from_detection).collect()
    };

    // Exact phase: repeatedly merge the most-overlapping pair. Cubic in
    // the cluster count, so when pre-clustering still leaves a very large
    // set (degenerate cascades that accept almost everything), fall back
    // to greedy cluster-into-cluster folding first.
    if clusters.len() > EXACT_LIMIT {
        let mut folded: Vec<Cluster> = Vec::new();
        for c in clusters {
            match folded
                .iter_mut()
                .find(|f| s_eyes(&f.mean(), &c.mean()) < overlap_threshold)
            {
                Some(f) => f.absorb(&c),
                None => folded.push(c),
            }
        }
        clusters = folded;
    }
    loop {
        if clusters.len() > 2 * EXACT_LIMIT {
            break; // degenerate input: greedy result stands
        }
        // Find the pair with the smallest S_eyes below the threshold.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..clusters.len() {
            let di = clusters[i].mean();
            for (j, cj) in clusters.iter().enumerate().skip(i + 1) {
                let s = s_eyes(&di, &cj.mean());
                if s < overlap_threshold && best.is_none_or(|(_, _, bs)| s < bs) {
                    best = Some((i, j, s));
                }
            }
        }
        let Some((i, j, _)) = best else { break };
        let other = clusters.swap_remove(j);
        clusters[i].absorb(&other);
    }

    let mut out: Vec<GroupedDetection> = clusters
        .into_iter()
        .filter(|c| c.n >= min_neighbors)
        .map(|c| {
            let d = c.mean();
            GroupedDetection { rect: d.rect, score: c.score, neighbors: c.n }
        })
        .collect();
    // Deterministic order: by score descending, then position.
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.rect.x.cmp(&b.rect.x))
            .then(a.rect.y.cmp(&b.rect.y))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(x: i32, y: i32, s: u32, score: f32) -> Detection {
        Detection { rect: Rect::new(x, y, s, s, ), score, scale: 0 }
    }

    #[test]
    fn s_eyes_is_zero_for_identical_windows() {
        let a = det(10, 10, 48, 1.0);
        assert_eq!(s_eyes(&a, &a), 0.0);
    }

    #[test]
    fn s_eyes_grows_with_displacement() {
        let a = det(0, 0, 48, 1.0);
        let near = det(2, 0, 48, 1.0);
        let far = det(30, 0, 48, 1.0);
        assert!(s_eyes(&a, &near) < s_eyes(&a, &far));
        // Displacement by one inter-eye distance in x on both eyes gives
        // S_eyes ~ 2 * d / d = 2... displacing by the full eye distance:
        let shifted = det((0.4 * 48.0) as i32, 0, 48, 1.0);
        assert!(s_eyes(&a, &shifted) > 1.5);
    }

    #[test]
    fn s_eyes_is_scale_sensitive() {
        // Same center, very different size: eyes land far apart relative
        // to the smaller window.
        let a = det(0, 0, 40, 1.0);
        let b = det(-20, -20, 80, 1.0);
        assert!(s_eyes(&a, &b) > 0.5, "s = {}", s_eyes(&a, &b));
    }

    #[test]
    fn overlapping_detections_merge_to_one_group() {
        let dets = vec![
            det(100, 100, 50, 1.0),
            det(102, 101, 50, 2.0),
            det(99, 99, 52, 1.5),
            det(101, 100, 48, 0.5),
        ];
        let groups = group_detections(&dets, 0.5, 2);
        assert_eq!(groups.len(), 1);
        let g = &groups[0];
        assert_eq!(g.neighbors, 4);
        assert_eq!(g.score, 2.0);
        // The averaged window is near the inputs.
        assert!((g.rect.x - 100).abs() <= 2);
        assert!((g.rect.w as i32 - 50).abs() <= 2);
    }

    #[test]
    fn distant_detections_stay_separate() {
        let dets = vec![det(0, 0, 50, 1.0), det(400, 300, 50, 1.0)];
        let groups = group_detections(&dets, 0.5, 1);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn min_neighbors_filters_lone_windows() {
        let dets = vec![
            det(0, 0, 50, 1.0), // lone firing
            det(300, 300, 50, 1.0),
            det(302, 301, 50, 1.0),
        ];
        let groups = group_detections(&dets, 0.5, 2);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].neighbors, 2);
        assert!(groups[0].rect.x > 200);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(group_detections(&[], 0.5, 1).is_empty());
    }

    #[test]
    fn groups_are_sorted_by_score() {
        let dets = vec![det(0, 0, 50, 1.0), det(300, 300, 50, 9.0)];
        let groups = group_detections(&dets, 0.5, 1);
        assert!(groups[0].score >= groups[1].score);
    }

    #[test]
    fn large_raw_sets_group_in_reasonable_time() {
        // A heavily truncated cascade can emit thousands of raw windows;
        // grouping must stay tractable (greedy pre-clustering path).
        let mut dets = Vec::new();
        for k in 0..2000 {
            let cx = (k % 40) * 30;
            let cy = (k / 40) * 9;
            dets.push(det(cx as i32, cy as i32, 48, (k % 7) as f32));
        }
        let t0 = std::time::Instant::now();
        let groups = group_detections(&dets, 0.5, 1);
        assert!(!groups.is_empty());
        assert!(groups.len() <= dets.len());
        assert!(
            t0.elapsed().as_secs_f64() < 5.0,
            "grouping 2000 windows took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn eyes_follow_window_geometry() {
        let d = det(100, 200, 100, 0.0);
        let (l, r) = d.eyes();
        assert!((l.x - 130.0).abs() < 1e-9);
        assert!((r.x - 170.0).abs() < 1e-9);
        assert!((l.y - 238.0).abs() < 1e-9);
        assert!((d.eye_distance() - 40.0).abs() < 1e-9);
    }
}
