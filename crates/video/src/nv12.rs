//! NV12 frame layout (the hardware decoder's native output, paper §V).
//!
//! "Since the hardware decodes frames in NV12 format, it is enough to
//! consider only the initial array of luminance components as the input
//! of the scaling process and subsequent pipeline stages."
//!
//! NV12 is a planar 4:2:0 format: a full-resolution Y (luma) plane
//! followed by one interleaved half-resolution UV (chroma) plane. The
//! detection pipeline consumes only the luma plane; chroma exists so the
//! display stage can reconstruct RGB for annotation overlays.

use fd_imgproc::{GrayImage, RgbImage};

/// An NV12 frame: full-res luma + half-res interleaved chroma.
#[derive(Debug, Clone)]
pub struct Nv12Frame {
    width: usize,
    height: usize,
    /// `width * height` luma samples.
    y: Vec<u8>,
    /// `(width/2) * (height/2)` interleaved (U, V) pairs.
    uv: Vec<u8>,
}

impl Nv12Frame {
    /// Wrap raw NV12 planes.
    pub fn new(width: usize, height: usize, y: Vec<u8>, uv: Vec<u8>) -> Self {
        assert!(width.is_multiple_of(2) && height.is_multiple_of(2), "NV12 requires even dimensions");
        assert_eq!(y.len(), width * height, "luma plane size");
        assert_eq!(uv.len(), width * height / 2, "chroma plane size");
        Self { width, height, y, uv }
    }

    /// Build a gray-world NV12 frame from a luma image (chroma neutral),
    /// which is what the synthetic trailers produce.
    pub fn from_luma(img: &GrayImage) -> Self {
        let (w, h) = (img.width(), img.height());
        assert!(w % 2 == 0 && h % 2 == 0, "NV12 requires even dimensions");
        Self { width: w, height: h, y: img.to_u8(), uv: vec![128u8; w * h / 2] }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    /// The luma plane as the pipeline's input image.
    pub fn luma(&self) -> GrayImage {
        GrayImage::from_u8(self.width, self.height, &self.y)
    }

    /// Raw plane access.
    pub fn y_plane(&self) -> &[u8] {
        &self.y
    }

    pub fn uv_plane(&self) -> &[u8] {
        &self.uv
    }

    /// Total frame bytes (1.5 bytes per pixel).
    pub fn size_bytes(&self) -> usize {
        self.y.len() + self.uv.len()
    }

    /// BT.601 conversion to RGB (used by the display stage to draw
    /// detection overlays on the original frame).
    pub fn to_rgb(&self) -> RgbImage {
        let mut rgb = RgbImage::new(self.width, self.height);
        let cw = self.width / 2;
        for yy in 0..self.height {
            for xx in 0..self.width {
                let y = self.y[yy * self.width + xx] as f32;
                let ci = (yy / 2) * cw + (xx / 2);
                let u = self.uv[ci * 2] as f32 - 128.0;
                let v = self.uv[ci * 2 + 1] as f32 - 128.0;
                let r = y + 1.402 * v;
                let g = y - 0.344 * u - 0.714 * v;
                let b = y + 1.772 * u;
                rgb.set(
                    xx,
                    yy,
                    [
                        r.clamp(0.0, 255.0) as u8,
                        g.clamp(0.0, 255.0) as u8,
                        b.clamp(0.0, 255.0) as u8,
                    ],
                );
            }
        }
        rgb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_luma_roundtrips_the_y_plane() {
        let img = GrayImage::from_fn(8, 6, |x, y| (x * 30 + y * 10) as f32);
        let f = Nv12Frame::from_luma(&img);
        assert_eq!(f.luma().to_u8(), img.to_u8());
        assert_eq!(f.size_bytes(), 8 * 6 * 3 / 2);
    }

    #[test]
    fn neutral_chroma_gives_gray_rgb() {
        let img = GrayImage::from_fn(4, 4, |_, _| 100.0);
        let rgb = Nv12Frame::from_luma(&img).to_rgb();
        let [r, g, b] = rgb.get(1, 1);
        assert_eq!(r, 100);
        assert_eq!(g, 100);
        assert_eq!(b, 100);
    }

    #[test]
    fn chroma_tints_rgb() {
        let img = GrayImage::from_fn(2, 2, |_, _| 128.0);
        let mut f = Nv12Frame::from_luma(&img);
        // Strong V (red difference) on the single chroma sample.
        f.uv = vec![128, 255];
        let rgb = f.to_rgb();
        let [r, _, b] = rgb.get(0, 0);
        assert!(r > 200, "V boost must push red up, got {r}");
        assert!(b < 140, "blue stays near luma");
    }

    #[test]
    #[should_panic(expected = "even dimensions")]
    fn odd_dimensions_are_rejected() {
        let img = GrayImage::new(5, 4);
        let _ = Nv12Frame::from_luma(&img);
    }

    #[test]
    #[should_panic(expected = "luma plane size")]
    fn wrong_plane_sizes_are_rejected() {
        let _ = Nv12Frame::new(4, 4, vec![0; 15], vec![0; 8]);
    }
}
