//! # fd-video — synthetic 1080p trailers and a simulated hardware decoder
//!
//! Substitute for the paper's benchmark corpus: ten H.264 1080p movie
//! trailers from the iTunes Movie Trailers site, decoded by the GPU's
//! on-die NVCUVID engine. Neither the videos nor the decoder hardware are
//! redistributable/available, so this crate generates what the experiments
//! actually consume:
//!
//! * [`trailer`] — deterministic, scene-structured 1080p luma sequences:
//!   scene cuts every few seconds, each scene with its own procedural
//!   background and a varying number of faces that move and change size
//!   smoothly. Per-frame face counts vary across scenes, which is exactly
//!   what makes the paper's per-frame detection latency fluctuate (their
//!   Fig. 5). Ground-truth face boxes and eye positions are available for
//!   every frame.
//! * [`decoder`] — a hardware-decoder model: returns the luma plane of the
//!   NV12 output (the only plane the pipeline consumes, §V) together with
//!   a deterministic 8–10 ms decode latency (the range the paper reports),
//!   which the detection pipeline overlaps with GPU compute.
//! * [`catalog`] — the ten trailer titles of Table II mapped to generator
//!   seeds and face statistics.

pub mod catalog;
pub mod nv12;
pub mod decoder;
pub mod trailer;

pub use catalog::{movie_trailers, TrailerInfo};
pub use nv12::Nv12Frame;
pub use decoder::{pipelined_fps, DecodeFault, DecodeFaultPlan, DecodedFrame, HwDecoder};
pub use trailer::{FaceInstance, Trailer, TrailerSpec};
