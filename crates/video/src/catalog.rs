//! The ten movie trailers of the paper's Table II, mapped to generator
//! seeds and face statistics.
//!
//! Face-count weights are chosen per title so the benchmark reproduces the
//! qualitative spread of Table II (dialogue-heavy comedies average more
//! and larger faces and hence longer detection times than ensemble/action
//! cuts); everything is deterministic in the listed seeds.

use crate::trailer::{Trailer, TrailerSpec};

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct TrailerInfo {
    pub title: &'static str,
    pub seed: u64,
    /// Weights for 0, 1, 2, ... simultaneous faces.
    pub face_count_weights: &'static [f64],
    /// Face-size bounds in pixels at 1080p.
    pub face_size: (f64, f64),
}

impl TrailerInfo {
    /// Build the trailer spec at full resolution.
    pub fn spec(&self, n_frames: usize) -> TrailerSpec {
        TrailerSpec {
            name: self.title.to_string(),
            width: 1920,
            height: 1080,
            fps: 24.0,
            n_frames,
            seed: self.seed,
            scene_len: (36, 120),
            face_count_weights: self.face_count_weights.to_vec(),
            face_size: self.face_size,
        }
    }

    /// Generate the trailer with `n_frames` frames.
    pub fn generate(&self, n_frames: usize) -> Trailer {
        Trailer::generate(self.spec(n_frames))
    }
}

/// The Table II lineup.
pub fn movie_trailers() -> Vec<TrailerInfo> {
    vec![
        TrailerInfo {
            title: "21 Jump Street",
            seed: 0x21_05,
            face_count_weights: &[0.25, 0.40, 0.25, 0.10],
            face_size: (48.0, 220.0),
        },
        TrailerInfo {
            title: "50/50",
            seed: 0x50_50,
            // The paper plots this one (Fig. 5): dialogue-driven, frequent
            // close-ups -> the heaviest per-frame load of the set.
            face_count_weights: &[0.05, 0.28, 0.30, 0.22, 0.15],
            face_size: (56.0, 280.0),
        },
        TrailerInfo {
            title: "American Reunion",
            seed: 0xA4E0,
            face_count_weights: &[0.30, 0.40, 0.20, 0.10],
            face_size: (48.0, 200.0),
        },
        TrailerInfo {
            title: "Bad Teacher",
            seed: 0xBAD7,
            face_count_weights: &[0.15, 0.40, 0.30, 0.15],
            face_size: (52.0, 240.0),
        },
        TrailerInfo {
            title: "Friends With Kids",
            seed: 0xF41D,
            face_count_weights: &[0.12, 0.38, 0.30, 0.20],
            face_size: (48.0, 240.0),
        },
        TrailerInfo {
            title: "One For The Money",
            seed: 0x1F07,
            face_count_weights: &[0.25, 0.40, 0.25, 0.10],
            face_size: (48.0, 220.0),
        },
        TrailerInfo {
            title: "The Dictator",
            seed: 0xD1C7,
            face_count_weights: &[0.15, 0.40, 0.28, 0.17],
            face_size: (52.0, 250.0),
        },
        TrailerInfo {
            title: "Tim and Eric's Billion Dollar Movie",
            seed: 0x7E4C,
            face_count_weights: &[0.15, 0.38, 0.30, 0.17],
            face_size: (52.0, 240.0),
        },
        TrailerInfo {
            title: "Unicorn City",
            seed: 0x0C17,
            face_count_weights: &[0.25, 0.40, 0.25, 0.10],
            face_size: (48.0, 220.0),
        },
        TrailerInfo {
            title: "What To Expect When You're Expecting",
            seed: 0xE5EC,
            face_count_weights: &[0.25, 0.42, 0.23, 0.10],
            face_size: (48.0, 215.0),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_the_ten_table2_titles() {
        let t = movie_trailers();
        assert_eq!(t.len(), 10);
        assert!(t.iter().any(|e| e.title == "50/50"));
        assert!(t.iter().any(|e| e.title == "The Dictator"));
        // Seeds are distinct.
        let mut seeds: Vec<u64> = t.iter().map(|e| e.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 10);
    }

    #[test]
    fn specs_are_1080p_24fps() {
        for info in movie_trailers() {
            let spec = info.spec(48);
            assert_eq!((spec.width, spec.height), (1920, 1080));
            assert_eq!(spec.fps, 24.0);
            assert_eq!(spec.n_frames, 48);
        }
    }

    #[test]
    fn fifty_fifty_is_among_the_heaviest() {
        // Its mean face count must be in the top half of the lineup, since
        // the paper uses it as the stress plot.
        let infos = movie_trailers();
        let means: Vec<(String, f64)> = infos
            .iter()
            .map(|i| {
                let t = i.generate(360);
                (i.title.to_string(), t.mean_faces_per_frame())
            })
            .collect();
        let fifty = means.iter().find(|(t, _)| t == "50/50").unwrap().1;
        let heavier = means.iter().filter(|(_, m)| *m > fifty).count();
        assert!(heavier <= 4, "50/50 mean {fifty:.2}, {heavier} trailers heavier");
    }
}
