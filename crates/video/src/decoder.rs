//! Simulated on-die H.264 hardware decoder.
//!
//! The paper offloads decoding to the GPU's fixed-function NVCUVID engine
//! (§III-A, §V): the host demuxes with libavformat, enqueues compressed
//! slices, and the decoder emits NV12 frames directly into device memory —
//! only the luminance plane feeds the detection pipeline. Measured decode
//! latency for their 1080p trailers was 8–10 ms per frame, fully
//! overlapped with detection compute.
//!
//! The model reproduces the interface and the latency distribution: each
//! decoded frame carries a deterministic pseudo-random latency in
//! `[8, 10] ms` (scaled by resolution relative to 1080p), and a pipelined
//! consumer can overlap it with detection, yielding the paper's ~70 fps
//! end-to-end figure.

use crate::trailer::Trailer;
use fd_imgproc::synth::SplitMix64;
use fd_imgproc::GrayImage;

/// Fault observed on a decoded frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeFault {
    /// The bitstream for this frame was damaged: the decoder emitted a
    /// picture, but a band of macroblock rows carries garbage (the classic
    /// smeared-blocks artifact of a lost slice).
    Corrupted,
    /// The decoder emitted nothing for this frame (dropped access unit);
    /// the luma plane is blank and must not be fed to detection.
    Dropped,
}

/// Seeded, deterministic decode-fault plan for [`HwDecoder`].
///
/// Per-frame verdicts are pure functions of `(seed, fault kind, frame
/// index)`, so a plan reproduces the same corrupt/dropped frames on every
/// run. A plan with zero rates is inert: decoded frames are bit-identical
/// to those of a decoder with no plan attached.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeFaultPlan {
    /// Seed for every per-frame verdict.
    pub seed: u64,
    /// Probability a frame decodes with a corrupted macroblock band.
    pub corrupt_rate: f64,
    /// Probability a frame is dropped outright (takes precedence over
    /// corruption when both fire).
    pub drop_rate: f64,
}

impl DecodeFaultPlan {
    /// An inert plan (all rates zero) with the given seed.
    pub fn seeded(seed: u64) -> Self {
        Self { seed, corrupt_rate: 0.0, drop_rate: 0.0 }
    }

    pub fn with_corrupt_frames(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    pub fn with_dropped_frames(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// `true` when no fault can ever fire.
    pub fn is_inert(&self) -> bool {
        self.corrupt_rate <= 0.0 && self.drop_rate <= 0.0
    }
}

/// Output of the simulated decoder for one frame.
#[derive(Debug, Clone)]
pub struct DecodedFrame {
    pub index: usize,
    /// Luminance plane of the NV12 output (what the pipeline consumes).
    pub luma: GrayImage,
    /// Simulated hardware decode latency for this frame, milliseconds.
    pub decode_ms: f64,
    /// Presentation timestamp, milliseconds.
    pub pts_ms: f64,
    /// Injected decode fault, if the attached [`DecodeFaultPlan`] fired.
    pub fault: Option<DecodeFault>,
}

/// Hardware-decoder model over a generated trailer.
pub struct HwDecoder {
    trailer: Trailer,
    next: usize,
    /// Decode-latency bounds at 1080p, milliseconds.
    latency_ms: (f64, f64),
    faults: Option<DecodeFaultPlan>,
}

impl HwDecoder {
    pub fn new(trailer: Trailer) -> Self {
        Self { trailer, next: 0, latency_ms: (8.0, 10.0), faults: None }
    }

    /// Attach (or clear) a decode-fault plan.
    pub fn set_fault_plan(&mut self, plan: Option<DecodeFaultPlan>) {
        self.faults = plan;
    }

    pub fn fault_plan(&self) -> Option<&DecodeFaultPlan> {
        self.faults.as_ref()
    }

    /// Deterministic fault verdict for `frame` under the attached plan.
    pub fn frame_fault(&self, frame: usize) -> Option<DecodeFault> {
        let plan = self.faults.as_ref()?;
        // Independent draw streams per fault kind so that enabling drops
        // does not shift which frames corrupt.
        let draw = |kind: u64| {
            SplitMix64::new(
                plan.seed
                    ^ kind.wrapping_mul(0xA24BAED4963EE407)
                    ^ (frame as u64).wrapping_mul(0x9E3779B97F4A7C15),
            )
            .next_f64()
        };
        if plan.drop_rate > 0.0 && draw(1) < plan.drop_rate {
            return Some(DecodeFault::Dropped);
        }
        if plan.corrupt_rate > 0.0 && draw(2) < plan.corrupt_rate {
            return Some(DecodeFault::Corrupted);
        }
        None
    }

    /// Overwrite a band of 16-px macroblock rows with blocky garbage —
    /// each 16x16 macroblock gets one flat pseudo-random luma value, the
    /// artifact a lost slice produces in a real H.264 decode.
    fn garble(&self, luma: &mut GrayImage, seed: u64, frame: usize) {
        let (w, h) = (luma.width(), luma.height());
        let mut rng = SplitMix64::new(
            seed ^ 0xC0DEC0DEC0DEC0DE ^ (frame as u64).wrapping_mul(0x9E3779B97F4A7C15),
        );
        let mb_rows = h.div_ceil(16);
        let band_mbs = (1 + (rng.next_u64() as usize) % 4).min(mb_rows);
        let start_mb = (rng.next_u64() as usize) % (mb_rows - band_mbs + 1);
        for mb_y in start_mb..start_mb + band_mbs {
            for mb_x in 0..w.div_ceil(16) {
                let v = rng.next_f64() as f32;
                for y in (mb_y * 16..(mb_y + 1) * 16).take_while(|&y| y < h) {
                    for x in (mb_x * 16..(mb_x + 1) * 16).take_while(|&x| x < w) {
                        luma.set(x, y, v);
                    }
                }
            }
        }
    }

    /// The underlying trailer (ground truth access).
    pub fn trailer(&self) -> &Trailer {
        &self.trailer
    }

    /// Deterministic decode latency for `frame`.
    pub fn decode_latency_ms(&self, frame: usize) -> f64 {
        let mut rng = SplitMix64::new(self.trailer.spec.seed ^ (frame as u64).wrapping_mul(0x9E37));
        let (lo, hi) = self.latency_ms;
        // Scale by pixel count relative to 1080p (decode work is roughly
        // proportional to coded area).
        let area_scale =
            (self.trailer.spec.width * self.trailer.spec.height) as f64 / (1920.0 * 1080.0);
        (lo + (hi - lo) * rng.next_f64()) * area_scale.max(0.05)
    }

    /// Decode a specific frame, applying any attached fault plan.
    pub fn decode_frame(&self, frame: usize) -> DecodedFrame {
        let fault = self.frame_fault(frame);
        let luma = match fault {
            // The engine spent its cycles either way, but emitted nothing.
            Some(DecodeFault::Dropped) => {
                GrayImage::new(self.trailer.spec.width, self.trailer.spec.height)
            }
            Some(DecodeFault::Corrupted) => {
                let mut img = self.trailer.render_frame(frame);
                let seed = self.faults.as_ref().map(|p| p.seed).unwrap_or(0);
                self.garble(&mut img, seed, frame);
                img
            }
            None => self.trailer.render_frame(frame),
        };
        DecodedFrame {
            index: frame,
            luma,
            decode_ms: self.decode_latency_ms(frame),
            pts_ms: frame as f64 * 1000.0 / self.trailer.spec.fps,
            fault,
        }
    }

    /// Frames remaining in streaming order.
    pub fn remaining(&self) -> usize {
        self.trailer.spec.n_frames - self.next
    }

    /// Index of the next frame the iterator will emit. Together with
    /// [`HwDecoder::seek`] this makes the streaming cursor resumable:
    /// because `decode_frame` is a pure function of the frame index, a
    /// fresh decoder sought to `stream_position()` continues
    /// bit-identically. (Named to avoid colliding with
    /// `Iterator::position`, which shadows inherent methods on `&mut`
    /// receivers via the blanket `impl Iterator for &mut I`.)
    pub fn stream_position(&self) -> usize {
        self.next
    }

    /// Move the streaming cursor so the next emitted frame is `frame`
    /// (clamped to end-of-stream).
    pub fn seek(&mut self, frame: usize) {
        self.next = frame.min(self.trailer.spec.n_frames);
    }
}

impl Iterator for HwDecoder {
    type Item = DecodedFrame;

    fn next(&mut self) -> Option<DecodedFrame> {
        if self.next >= self.trailer.spec.n_frames {
            return None;
        }
        let f = self.decode_frame(self.next);
        self.next += 1;
        Some(f)
    }
}

/// Steady-state throughput of a two-stage pipeline where decode (hardware)
/// overlaps detection (GPU compute): the per-frame period is the maximum
/// of the two stage latencies.
/// An empty stream has no throughput: returns `0.0` rather than dividing
/// by zero (mismatched stage lengths are truncated to the shorter one).
pub fn pipelined_fps(decode_ms: &[f64], detect_ms: &[f64]) -> f64 {
    let n = decode_ms.len().min(detect_ms.len());
    if n == 0 {
        return 0.0;
    }
    let total: f64 =
        decode_ms.iter().zip(detect_ms).map(|(&d, &k)| d.max(k)).sum();
    if total <= 0.0 || !total.is_finite() {
        return 0.0;
    }
    1000.0 * n as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trailer::TrailerSpec;

    fn trailer() -> Trailer {
        Trailer::generate(TrailerSpec {
            width: 1920,
            height: 1080,
            n_frames: 12,
            seed: 4,
            ..TrailerSpec::default()
        })
    }

    #[test]
    fn latency_stays_in_the_papers_range_at_1080p() {
        let dec = HwDecoder::new(trailer());
        for f in 0..12 {
            let ms = dec.decode_latency_ms(f);
            assert!((8.0..=10.0).contains(&ms), "frame {f}: {ms} ms");
        }
    }

    #[test]
    fn latency_is_deterministic_and_varies() {
        let dec = HwDecoder::new(trailer());
        let a: Vec<f64> = (0..12).map(|f| dec.decode_latency_ms(f)).collect();
        let b: Vec<f64> = (0..12).map(|f| dec.decode_latency_ms(f)).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
    }

    #[test]
    fn iterator_streams_all_frames_in_order() {
        let dec = HwDecoder::new(trailer());
        let frames: Vec<DecodedFrame> = dec.collect();
        assert_eq!(frames.len(), 12);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.index, i);
            assert_eq!(f.luma.width(), 1920);
        }
        // PTS spacing = 1/fps.
        let dt = frames[1].pts_ms - frames[0].pts_ms;
        assert!((dt - 1000.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_resolutions_decode_faster() {
        let small = Trailer::generate(TrailerSpec {
            width: 640,
            height: 360,
            n_frames: 2,
            seed: 4,
            face_size: (30.0, 80.0),
            ..TrailerSpec::default()
        });
        let dec = HwDecoder::new(small);
        assert!(dec.decode_latency_ms(0) < 8.0);
    }

    #[test]
    fn pipelined_fps_is_bounded_by_the_slower_stage() {
        // decode 10ms, detect 5ms -> 100 fps; detect 20ms -> 50 fps.
        assert!((pipelined_fps(&[10.0; 4], &[5.0; 4]) - 100.0).abs() < 1e-9);
        assert!((pipelined_fps(&[10.0; 4], &[20.0; 4]) - 50.0).abs() < 1e-9);
        // The paper's case: ~9ms decode, ~5ms detect -> ~70-110 fps.
        let fps = pipelined_fps(&[9.0; 4], &[4.5; 4]);
        assert!(fps > 70.0);
    }

    #[test]
    fn pipelined_fps_of_an_empty_stream_is_zero() {
        assert_eq!(pipelined_fps(&[], &[]), 0.0);
        assert_eq!(pipelined_fps(&[0.0; 3], &[0.0; 3]), 0.0);
    }

    #[test]
    fn inert_fault_plan_is_bit_identical_to_none() {
        let clean = HwDecoder::new(trailer());
        let mut planned = HwDecoder::new(trailer());
        planned.set_fault_plan(Some(DecodeFaultPlan::seeded(99)));
        for f in 0..12 {
            let a = clean.decode_frame(f);
            let b = planned.decode_frame(f);
            assert_eq!(a.luma.as_slice(), b.luma.as_slice(), "frame {f}");
            assert_eq!(a.decode_ms.to_bits(), b.decode_ms.to_bits());
            assert_eq!(b.fault, None);
        }
    }

    #[test]
    fn corrupt_frames_are_deterministic_and_visibly_garbled() {
        let mut dec = HwDecoder::new(trailer());
        dec.set_fault_plan(Some(DecodeFaultPlan::seeded(7).with_corrupt_frames(0.5)));
        let verdicts: Vec<_> = (0..12).map(|f| dec.frame_fault(f)).collect();
        assert!(verdicts.iter().any(|v| *v == Some(DecodeFault::Corrupted)));
        assert!(verdicts.iter().any(|v| v.is_none()));
        // Same plan, fresh decoder: identical verdicts and identical pixels.
        let mut dec2 = HwDecoder::new(trailer());
        dec2.set_fault_plan(Some(DecodeFaultPlan::seeded(7).with_corrupt_frames(0.5)));
        for f in 0..12 {
            assert_eq!(dec.frame_fault(f), dec2.frame_fault(f));
            let a = dec.decode_frame(f);
            let b = dec2.decode_frame(f);
            assert_eq!(a.luma.as_slice(), b.luma.as_slice());
            if a.fault == Some(DecodeFault::Corrupted) {
                let clean = dec.trailer().render_frame(f);
                assert_ne!(a.luma.as_slice(), clean.as_slice(), "frame {f} not garbled");
            }
        }
    }

    #[test]
    fn seek_resumes_the_stream_bit_identically() {
        let mut full = HwDecoder::new(trailer());
        full.set_fault_plan(Some(DecodeFaultPlan::seeded(7).with_corrupt_frames(0.3)));
        let all: Vec<DecodedFrame> = full.by_ref().collect();

        let mut resumed = HwDecoder::new(trailer());
        resumed.set_fault_plan(Some(DecodeFaultPlan::seeded(7).with_corrupt_frames(0.3)));
        for _ in 0..5 {
            resumed.next();
        }
        let at = resumed.stream_position();
        assert_eq!(at, 5);
        // Simulate a restart: fresh decoder sought to the saved cursor.
        let mut fresh = HwDecoder::new(trailer());
        fresh.set_fault_plan(Some(DecodeFaultPlan::seeded(7).with_corrupt_frames(0.3)));
        fresh.seek(at);
        assert_eq!(fresh.remaining(), 12 - 5);
        for (i, f) in fresh.enumerate() {
            let reference = &all[at + i];
            assert_eq!(f.index, reference.index);
            assert_eq!(f.luma.as_slice(), reference.luma.as_slice());
            assert_eq!(f.decode_ms.to_bits(), reference.decode_ms.to_bits());
            assert_eq!(f.fault, reference.fault);
        }
        // Seeking past the end clamps: iterator is immediately exhausted.
        let mut past = HwDecoder::new(trailer());
        past.seek(usize::MAX);
        assert_eq!(past.remaining(), 0);
        assert!(past.next().is_none());
    }

    #[test]
    fn dropped_frames_come_out_blank_and_flagged() {
        let mut dec = HwDecoder::new(trailer());
        dec.set_fault_plan(Some(DecodeFaultPlan::seeded(3).with_dropped_frames(1.0)));
        let f = dec.decode_frame(0);
        assert_eq!(f.fault, Some(DecodeFault::Dropped));
        assert!(f.luma.as_slice().iter().all(|&p| p == 0.0));
    }
}
