//! Simulated on-die H.264 hardware decoder.
//!
//! The paper offloads decoding to the GPU's fixed-function NVCUVID engine
//! (§III-A, §V): the host demuxes with libavformat, enqueues compressed
//! slices, and the decoder emits NV12 frames directly into device memory —
//! only the luminance plane feeds the detection pipeline. Measured decode
//! latency for their 1080p trailers was 8–10 ms per frame, fully
//! overlapped with detection compute.
//!
//! The model reproduces the interface and the latency distribution: each
//! decoded frame carries a deterministic pseudo-random latency in
//! `[8, 10] ms` (scaled by resolution relative to 1080p), and a pipelined
//! consumer can overlap it with detection, yielding the paper's ~70 fps
//! end-to-end figure.

use crate::trailer::Trailer;
use fd_imgproc::synth::SplitMix64;
use fd_imgproc::GrayImage;

/// Output of the simulated decoder for one frame.
#[derive(Debug, Clone)]
pub struct DecodedFrame {
    pub index: usize,
    /// Luminance plane of the NV12 output (what the pipeline consumes).
    pub luma: GrayImage,
    /// Simulated hardware decode latency for this frame, milliseconds.
    pub decode_ms: f64,
    /// Presentation timestamp, milliseconds.
    pub pts_ms: f64,
}

/// Hardware-decoder model over a generated trailer.
pub struct HwDecoder {
    trailer: Trailer,
    next: usize,
    /// Decode-latency bounds at 1080p, milliseconds.
    latency_ms: (f64, f64),
}

impl HwDecoder {
    pub fn new(trailer: Trailer) -> Self {
        Self { trailer, next: 0, latency_ms: (8.0, 10.0) }
    }

    /// The underlying trailer (ground truth access).
    pub fn trailer(&self) -> &Trailer {
        &self.trailer
    }

    /// Deterministic decode latency for `frame`.
    pub fn decode_latency_ms(&self, frame: usize) -> f64 {
        let mut rng = SplitMix64::new(self.trailer.spec.seed ^ (frame as u64).wrapping_mul(0x9E37));
        let (lo, hi) = self.latency_ms;
        // Scale by pixel count relative to 1080p (decode work is roughly
        // proportional to coded area).
        let area_scale =
            (self.trailer.spec.width * self.trailer.spec.height) as f64 / (1920.0 * 1080.0);
        (lo + (hi - lo) * rng.next_f64()) * area_scale.max(0.05)
    }

    /// Decode a specific frame.
    pub fn decode_frame(&self, frame: usize) -> DecodedFrame {
        DecodedFrame {
            index: frame,
            luma: self.trailer.render_frame(frame),
            decode_ms: self.decode_latency_ms(frame),
            pts_ms: frame as f64 * 1000.0 / self.trailer.spec.fps,
        }
    }

    /// Frames remaining in streaming order.
    pub fn remaining(&self) -> usize {
        self.trailer.spec.n_frames - self.next
    }
}

impl Iterator for HwDecoder {
    type Item = DecodedFrame;

    fn next(&mut self) -> Option<DecodedFrame> {
        if self.next >= self.trailer.spec.n_frames {
            return None;
        }
        let f = self.decode_frame(self.next);
        self.next += 1;
        Some(f)
    }
}

/// Steady-state throughput of a two-stage pipeline where decode (hardware)
/// overlaps detection (GPU compute): the per-frame period is the maximum
/// of the two stage latencies.
pub fn pipelined_fps(decode_ms: &[f64], detect_ms: &[f64]) -> f64 {
    assert_eq!(decode_ms.len(), detect_ms.len());
    assert!(!decode_ms.is_empty());
    let total: f64 =
        decode_ms.iter().zip(detect_ms).map(|(&d, &k)| d.max(k)).sum();
    1000.0 * decode_ms.len() as f64 / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trailer::TrailerSpec;

    fn trailer() -> Trailer {
        Trailer::generate(TrailerSpec {
            width: 1920,
            height: 1080,
            n_frames: 12,
            seed: 4,
            ..TrailerSpec::default()
        })
    }

    #[test]
    fn latency_stays_in_the_papers_range_at_1080p() {
        let dec = HwDecoder::new(trailer());
        for f in 0..12 {
            let ms = dec.decode_latency_ms(f);
            assert!((8.0..=10.0).contains(&ms), "frame {f}: {ms} ms");
        }
    }

    #[test]
    fn latency_is_deterministic_and_varies() {
        let dec = HwDecoder::new(trailer());
        let a: Vec<f64> = (0..12).map(|f| dec.decode_latency_ms(f)).collect();
        let b: Vec<f64> = (0..12).map(|f| dec.decode_latency_ms(f)).collect();
        assert_eq!(a, b);
        assert!(a.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
    }

    #[test]
    fn iterator_streams_all_frames_in_order() {
        let dec = HwDecoder::new(trailer());
        let frames: Vec<DecodedFrame> = dec.collect();
        assert_eq!(frames.len(), 12);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.index, i);
            assert_eq!(f.luma.width(), 1920);
        }
        // PTS spacing = 1/fps.
        let dt = frames[1].pts_ms - frames[0].pts_ms;
        assert!((dt - 1000.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_resolutions_decode_faster() {
        let small = Trailer::generate(TrailerSpec {
            width: 640,
            height: 360,
            n_frames: 2,
            seed: 4,
            face_size: (30.0, 80.0),
            ..TrailerSpec::default()
        });
        let dec = HwDecoder::new(small);
        assert!(dec.decode_latency_ms(0) < 8.0);
    }

    #[test]
    fn pipelined_fps_is_bounded_by_the_slower_stage() {
        // decode 10ms, detect 5ms -> 100 fps; detect 20ms -> 50 fps.
        assert!((pipelined_fps(&[10.0; 4], &[5.0; 4]) - 100.0).abs() < 1e-9);
        assert!((pipelined_fps(&[10.0; 4], &[20.0; 4]) - 50.0).abs() < 1e-9);
        // The paper's case: ~9ms decode, ~5ms detect -> ~70-110 fps.
        let fps = pipelined_fps(&[9.0; 4], &[4.5; 4]);
        assert!(fps > 70.0);
    }
}
