//! Scene-structured synthetic trailers with ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fd_imgproc::synth::{render_random_background, FaceParams};
use fd_imgproc::{GrayImage, PointF, Rect};

/// Generation parameters for one trailer.
#[derive(Debug, Clone)]
pub struct TrailerSpec {
    pub name: String,
    pub width: usize,
    pub height: usize,
    pub fps: f64,
    pub n_frames: usize,
    pub seed: u64,
    /// Scene length bounds, frames.
    pub scene_len: (usize, usize),
    /// Faces per scene: weights for 0, 1, 2, ... faces.
    pub face_count_weights: Vec<f64>,
    /// Face size bounds, pixels.
    pub face_size: (f64, f64),
}

impl Default for TrailerSpec {
    fn default() -> Self {
        Self {
            name: "untitled".into(),
            width: 1920,
            height: 1080,
            fps: 24.0,
            n_frames: 240,
            seed: 1,
            scene_len: (36, 120),
            face_count_weights: vec![0.2, 0.35, 0.25, 0.12, 0.08],
            face_size: (48.0, 260.0),
        }
    }
}

/// One face track within a scene: linear motion + smooth size change.
#[derive(Debug, Clone)]
struct FaceTrack {
    params: FaceParams,
    /// Top-left position at scene start / end.
    p0: (f64, f64),
    p1: (f64, f64),
    /// Size (pixels) at scene start / end.
    s0: f64,
    s1: f64,
}

#[derive(Debug, Clone)]
struct Scene {
    start: usize,
    len: usize,
    background: GrayImage,
    faces: Vec<FaceTrack>,
}

/// Ground truth for one visible face in one frame.
#[derive(Debug, Clone)]
pub struct FaceInstance {
    /// Face bounding box in frame coordinates.
    pub rect: Rect,
    /// Ground-truth eye centers.
    pub eyes: (PointF, PointF),
}

/// A fully generated trailer: scenes precomputed, frames rendered on
/// demand (backgrounds cached per scene).
pub struct Trailer {
    pub spec: TrailerSpec,
    scenes: Vec<Scene>,
}

impl Trailer {
    /// Generate the scene structure for `spec` (deterministic in the seed).
    pub fn generate(spec: TrailerSpec) -> Self {
        assert!(spec.n_frames > 0 && spec.width >= 64 && spec.height >= 64);
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut scenes = Vec::new();
        let mut start = 0usize;
        while start < spec.n_frames {
            let len = rng.random_range(spec.scene_len.0..=spec.scene_len.1);
            let len = len.min(spec.n_frames - start);
            let background = render_random_background(&mut rng, spec.width, spec.height);
            let n_faces = sample_weighted(&mut rng, &spec.face_count_weights);
            let mut faces = Vec::new();
            for _ in 0..n_faces {
                let s0 = rng.random_range(spec.face_size.0..spec.face_size.1);
                // Sizes drift by up to +/-25% over a scene.
                let s1 = (s0 * rng.random_range(0.75..1.25))
                    .clamp(spec.face_size.0, spec.face_size.1);
                let smax = s0.max(s1);
                let max_x = (spec.width as f64 - smax).max(1.0);
                let max_y = (spec.height as f64 - smax).max(1.0);
                let p0 = (rng.random_range(0.0..max_x), rng.random_range(0.0..max_y));
                // Drift up to ~15% of the frame over the scene.
                let drift = 0.15 * spec.width as f64;
                let p1 = (
                    (p0.0 + rng.random_range(-drift..drift)).clamp(0.0, max_x),
                    (p0.1 + rng.random_range(-drift..drift)).clamp(0.0, max_y),
                );
                faces.push(FaceTrack { params: FaceParams::sample(&mut rng), p0, p1, s0, s1 });
            }
            scenes.push(Scene { start, len, background, faces });
            start += len;
        }
        Self { spec, scenes }
    }

    /// Number of scenes.
    pub fn scene_count(&self) -> usize {
        self.scenes.len()
    }

    fn scene_of(&self, frame: usize) -> &Scene {
        assert!(frame < self.spec.n_frames, "frame {frame} out of range");
        self.scenes
            .iter()
            .rev()
            .find(|s| s.start <= frame)
            .expect("scene coverage is contiguous from 0")
    }

    /// Interpolation parameter of `frame` within its scene (0..=1).
    fn scene_t(scene: &Scene, frame: usize) -> f64 {
        if scene.len <= 1 {
            0.0
        } else {
            (frame - scene.start) as f64 / (scene.len - 1) as f64
        }
    }

    /// Ground-truth faces visible in `frame`.
    pub fn faces_at(&self, frame: usize) -> Vec<FaceInstance> {
        let scene = self.scene_of(frame);
        let t = Self::scene_t(scene, frame);
        scene
            .faces
            .iter()
            .map(|f| {
                let size = f.s0 + (f.s1 - f.s0) * t;
                let x = f.p0.0 + (f.p1.0 - f.p0.0) * t;
                let y = f.p0.1 + (f.p1.1 - f.p0.1) * t;
                let rect =
                    Rect::new(x.round() as i32, y.round() as i32, size.round() as u32, size.round() as u32);
                let eyes = f.params.eye_centers(size, x, y);
                FaceInstance { rect, eyes }
            })
            .collect()
    }

    /// Render the luma plane of `frame`.
    pub fn render_frame(&self, frame: usize) -> GrayImage {
        let scene = self.scene_of(frame);
        let t = Self::scene_t(scene, frame);
        let mut img = scene.background.clone();
        for f in &scene.faces {
            let size = (f.s0 + (f.s1 - f.s0) * t).round().max(8.0) as usize;
            let x = (f.p0.0 + (f.p1.0 - f.p0.0) * t).round() as i32;
            let y = (f.p0.1 + (f.p1.1 - f.p0.1) * t).round() as i32;
            let patch = f.params.render(size);
            img.blit(&patch, x, y);
        }
        img
    }

    /// Mean number of faces per frame over the whole trailer.
    pub fn mean_faces_per_frame(&self) -> f64 {
        let total: usize = self.scenes.iter().map(|s| s.faces.len() * s.len).sum();
        total as f64 / self.spec.n_frames as f64
    }
}

fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "face count weights must not all be zero");
    let mut r = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if r < w {
            return i;
        }
        r -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> TrailerSpec {
        TrailerSpec {
            name: "test".into(),
            width: 320,
            height: 180,
            n_frames: 60,
            seed,
            scene_len: (10, 20),
            face_size: (30.0, 80.0),
            ..TrailerSpec::default()
        }
    }

    #[test]
    fn scenes_tile_the_frame_range() {
        let t = Trailer::generate(small_spec(3));
        assert!(t.scene_count() >= 3);
        // Every frame belongs to exactly one scene and renders.
        let mut covered = 0;
        for s in &t.scenes {
            assert_eq!(s.start, covered);
            covered += s.len;
        }
        assert_eq!(covered, 60);
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = Trailer::generate(small_spec(9));
        let b = Trailer::generate(small_spec(9));
        assert_eq!(a.render_frame(17).as_slice(), b.render_frame(17).as_slice());
        assert_eq!(a.faces_at(17).len(), b.faces_at(17).len());
        let c = Trailer::generate(small_spec(10));
        // Different seed differs somewhere (overwhelmingly likely).
        assert_ne!(a.render_frame(0).as_slice(), c.render_frame(0).as_slice());
    }

    #[test]
    fn ground_truth_matches_rendered_faces() {
        let t = Trailer::generate(small_spec(5));
        for frame in [0, 20, 59] {
            let faces = t.faces_at(frame);
            let img = t.render_frame(frame);
            for f in &faces {
                // Eyes must lie inside the face rect and the frame.
                for eye in [f.eyes.0, f.eyes.1] {
                    assert!(eye.x >= f.rect.x as f64 && eye.x <= f.rect.right() as f64);
                    assert!(eye.y >= f.rect.y as f64 && eye.y <= f.rect.bottom() as f64);
                }
                // The eye region must be darker than the face average
                // (only check when fully inside the frame).
                let r = f.rect;
                if r.x >= 0
                    && r.y >= 0
                    && r.right() <= img.width() as i32
                    && r.bottom() <= img.height() as i32
                    && r.w >= 16
                {
                    let eye_px = img.get_clamped(f.eyes.0.x as isize, f.eyes.0.y as isize);
                    let face_mean = img.crop(r).mean();
                    assert!(
                        (eye_px as f64) < face_mean + 25.0,
                        "frame {frame}: eye {eye_px} vs face mean {face_mean}"
                    );
                }
            }
        }
    }

    #[test]
    fn faces_move_within_a_scene() {
        // Find a scene longer than 1 frame that has a face and check the
        // ground truth moves smoothly.
        let t = Trailer::generate(small_spec(12));
        let scene = t.scenes.iter().find(|s| !s.faces.is_empty() && s.len >= 10);
        if let Some(s) = scene {
            let a = t.faces_at(s.start)[0].rect;
            let b = t.faces_at(s.start + s.len - 1)[0].rect;
            // Motion is bounded by the drift parameter.
            let dx = (a.x - b.x).abs();
            assert!(dx <= (0.15 * 320.0) as i32 + 2, "dx {dx}");
        }
    }

    #[test]
    fn mean_faces_per_frame_reflects_weights() {
        let mut spec = small_spec(7);
        spec.face_count_weights = vec![0.0, 1.0]; // always exactly one face
        let t = Trailer::generate(spec);
        assert!((t.mean_faces_per_frame() - 1.0).abs() < 1e-12);
    }
}
