//! GentleBoost (Friedman, Hastie & Tibshirani 2000), the paper's learning
//! algorithm, with the paper's parallelization pattern: the sweep over
//! feature combinations is task-parallel (Rayon standing in for
//! `#pragma omp parallel for`), and each feature's response is evaluated
//! for the whole training set with contiguous row arithmetic (the SSE4 /
//! Eigen data parallelism).

use rayon::prelude::*;

use crate::dataset::TrainingSet;
use crate::lut::FeatureLut;
use crate::regression::{fit_regression_stump, StumpFit};
use fd_haar::{HaarFeature, Stump};

/// Shared interface of the two boosting algorithms: pick the best stump
/// for the current sample weights.
pub trait WeakLearner: Sync {
    /// Fit one boosting round; returns the selected stump.
    fn fit_round(&self, set: &TrainingSet, weights: &[f64]) -> Stump;

    /// Row-operations one round performs (for the SMP work model): the
    /// parallelizable feature sweep.
    fn round_parallel_ops(&self, n_samples: usize) -> u64;

    /// Serial operations per round (ranking, weight update).
    fn round_serial_ops(&self, n_samples: usize) -> u64 {
        4 * n_samples as u64
    }

    /// Number of candidate features.
    fn n_features(&self) -> usize;
}

/// Reduction key: (loss, feature index) with a total order, so the Rayon
/// reduction is deterministic regardless of split points.
fn better(a: &(f64, usize, StumpFit), b: &(f64, usize, StumpFit)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 < b.1)
}

/// The feature pool compiled once, shared by both learners.
pub struct FeaturePool {
    pub(crate) features: Vec<HaarFeature>,
    pub(crate) luts: Vec<FeatureLut>,
    pub(crate) n_bins: usize,
}

impl FeaturePool {
    pub fn new(features: Vec<HaarFeature>, n_bins: usize) -> Self {
        assert!(n_bins >= 2);
        let luts = features.iter().map(FeatureLut::from_feature).collect();
        Self { features, luts, n_bins }
    }

    pub fn len(&self) -> usize {
        self.features.len()
    }

    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Total row-ops of one full sweep for `n` samples.
    pub(crate) fn sweep_ops(&self, n: usize) -> u64 {
        self.luts
            .iter()
            .map(|l| (l.ops_per_sample() + 2) as u64 * n as u64 + self.n_bins as u64)
            .sum()
    }

    /// Run `fit` over every feature in parallel and return the best
    /// `(loss, index, fit)` triple. This is the paper's Fig. 4 loop.
    pub(crate) fn best_fit(
        &self,
        set: &TrainingSet,
        weights: &[f64],
        fit: impl Fn(&[i32], &[f32], &[f64], usize) -> StumpFit + Sync,
    ) -> (usize, StumpFit) {
        let n = set.len();
        let labels = set.labels();
        let init = || (f64::INFINITY, usize::MAX, StumpFit { threshold: 0, left: 0.0, right: 0.0, loss: f64::INFINITY });
        let best = self
            .luts
            .par_iter()
            .enumerate()
            .fold(
                || (vec![0i32; n], init()),
                |(mut buf, best), (i, lut)| {
                    lut.eval_all(set, &mut buf);
                    let f = fit(&buf, labels, weights, self.n_bins);
                    let cand = (f.loss, i, f);
                    if better(&cand, &best) {
                        (buf, cand)
                    } else {
                        (buf, best)
                    }
                },
            )
            .map(|(_, best)| best)
            .reduce(init, |a, b| if better(&a, &b) { a } else { b });
        assert!(best.1 != usize::MAX, "empty feature pool");
        (best.1, best.2)
    }
}

/// GentleBoost: regression stumps, multiplicative weight update
/// `w <- w * exp(-y f(x))`.
pub struct GentleBoost {
    pub pool: FeaturePool,
}

impl GentleBoost {
    pub fn new(features: Vec<HaarFeature>) -> Self {
        Self { pool: FeaturePool::new(features, 256) }
    }
}

impl WeakLearner for GentleBoost {
    fn fit_round(&self, set: &TrainingSet, weights: &[f64]) -> Stump {
        let (idx, fit) = self.pool.best_fit(set, weights, fit_regression_stump);
        Stump {
            feature: self.pool.features[idx],
            threshold: fit.threshold,
            left: fit.left,
            right: fit.right,
        }
    }

    fn round_parallel_ops(&self, n_samples: usize) -> u64 {
        self.pool.sweep_ops(n_samples)
    }

    fn n_features(&self) -> usize {
        self.pool.len()
    }
}

/// The shared boosting weight update `w_i <- w_i * exp(-y_i f(x_i))`,
/// renormalized to sum 1. Returns the stump's responses for reuse.
pub fn update_weights(stump: &Stump, set: &TrainingSet, weights: &mut [f64]) -> Vec<f32> {
    let n = set.len();
    assert_eq!(weights.len(), n);
    let lut = FeatureLut::from_feature(&stump.feature);
    let mut responses = vec![0i32; n];
    lut.eval_all(set, &mut responses);
    let mut outputs = Vec::with_capacity(n);
    let labels = set.labels();
    let mut total = 0.0f64;
    for i in 0..n {
        let f = stump.eval_response(responses[i]);
        outputs.push(f);
        weights[i] *= (-(labels[i] as f64) * f as f64).exp();
        total += weights[i];
    }
    assert!(total > 0.0, "weights collapsed to zero");
    for w in weights.iter_mut() {
        *w /= total;
    }
    outputs
}

/// Initial weights: each class carries half the mass (Viola-Jones style).
pub fn initial_weights(set: &TrainingSet) -> Vec<f64> {
    let p = set.positives().max(1) as f64;
    let n = set.negatives().max(1) as f64;
    set.labels()
        .iter()
        .map(|&y| if y > 0.0 { 0.5 / p } else { 0.5 / n })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{enumerate_kind, EnumerationRule, FeatureKind};
    use fd_imgproc::GrayImage;

    /// Tiny corpus: faces are left-dark/right-bright 24x24 windows,
    /// negatives are flat. An EdgeH feature separates them perfectly.
    fn toy_set() -> TrainingSet {
        let mut imgs = Vec::new();
        for i in 0..8 {
            let hi = 200.0 + i as f32 * 5.0;
            imgs.push((
                GrayImage::from_fn(24, 24, move |x, _| if x < 12 { 20.0 } else { hi }),
                1.0f32,
            ));
        }
        for i in 0..8 {
            let v = 60.0 + i as f32 * 10.0;
            imgs.push((GrayImage::from_fn(24, 24, move |_, _| v), -1.0f32));
        }
        let refs: Vec<(&GrayImage, f32)> = imgs.iter().map(|(i, l)| (i, *l)).collect();
        TrainingSet::from_samples(refs)
    }

    fn small_pool() -> Vec<fd_haar::HaarFeature> {
        // EdgeH features only, subsampled for speed.
        enumerate_kind(FeatureKind::EdgeH, 24, EnumerationRule::Icpp2012)
            .into_iter()
            .step_by(97)
            .collect()
    }

    #[test]
    fn gentleboost_first_round_separates_toy_data() {
        let set = toy_set();
        let gb = GentleBoost::new(small_pool());
        let w = initial_weights(&set);
        let stump = gb.fit_round(&set, &w);
        // The stump must classify every sample correctly by sign.
        for col in 0..set.len() {
            let ii = set.integral_of(col);
            let out = stump.eval(&ii, 0, 0);
            assert_eq!(
                out > 0.0,
                set.labels()[col] > 0.0,
                "col {col}: out {out}, label {}",
                set.labels()[col]
            );
        }
    }

    #[test]
    fn weight_update_shifts_mass_to_errors() {
        let set = toy_set();
        let gb = GentleBoost::new(small_pool());
        let mut w = initial_weights(&set);
        let stump = gb.fit_round(&set, &w);
        let before = w.clone();
        update_weights(&stump, &set, &mut w);
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "weights renormalized");
        // Correctly classified samples lose relative weight.
        for i in 0..set.len() {
            assert!(w[i] <= before[i] * 1.5, "no sample explodes on separable data");
        }
    }

    #[test]
    fn initial_weights_balance_classes() {
        let set = toy_set();
        let w = initial_weights(&set);
        let pos: f64 = w.iter().zip(set.labels()).filter(|&(_, &y)| y > 0.0).map(|(w, _)| w).sum();
        assert!((pos - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fit_is_deterministic_across_runs() {
        let set = toy_set();
        let gb = GentleBoost::new(small_pool());
        let w = initial_weights(&set);
        let a = gb.fit_round(&set, &w);
        let b = gb.fit_round(&set, &w);
        assert_eq!(a, b);
    }

    #[test]
    fn work_model_counts_scale_with_samples_and_features() {
        let gb = GentleBoost::new(small_pool());
        let o1 = gb.round_parallel_ops(100);
        let o2 = gb.round_parallel_ops(200);
        assert!(o2 > o1 && o2 < 2 * o1 + gb.n_features() as u64 * 600);
    }
}
