//! Shared fixtures for the crate's unit tests.

use crate::dataset::TrainingSet;
use fd_haar::{enumerate_kind, EnumerationRule, FeatureKind, HaarFeature};
use fd_imgproc::GrayImage;

/// Tiny corpus: faces are left-dark/right-bright 24x24 windows, negatives
/// are flat. An EdgeH feature separates them perfectly.
pub(crate) fn toy_set() -> TrainingSet {
    let mut imgs = Vec::new();
    for i in 0..8 {
        let hi = 200.0 + i as f32 * 5.0;
        imgs.push((
            GrayImage::from_fn(24, 24, move |x, _| if x < 12 { 20.0 } else { hi }),
            1.0f32,
        ));
    }
    for i in 0..8 {
        let v = 60.0 + i as f32 * 10.0;
        imgs.push((GrayImage::from_fn(24, 24, move |_, _| v), -1.0f32));
    }
    let refs: Vec<(&GrayImage, f32)> = imgs.iter().map(|(i, l)| (i, *l)).collect();
    TrainingSet::from_samples(refs)
}

/// EdgeH features only, subsampled for speed.
pub(crate) fn small_pool() -> Vec<HaarFeature> {
    enumerate_kind(FeatureKind::EdgeH, 24, EnumerationRule::Icpp2012)
        .into_iter()
        .step_by(97)
        .collect()
}
