//! Attentional-cascade training (paper §IV).
//!
//! "We implemented GentleBoost using a single large loop, which iteratively
//! builds a cascade by adding at each iteration a new classifier until both
//! the target hit and false acceptance rate are met. An additional
//! bootstrapping routine is added at the end of the loop..."
//!
//! The builder adds stumps to the current stage until the stage — with its
//! threshold calibrated to keep `min_detection_rate` of the positives —
//! rejects enough negatives, then bootstraps a fresh pool of hard
//! negatives and opens the next stage. Works with either weak learner
//! ([`crate::GentleBoost`] or [`crate::AdaBoost`]).

use crate::dataset::TrainingSet;
use crate::gentle::{initial_weights, update_weights, WeakLearner};
use crate::synthdata::NegativeSource;
use fd_haar::{Cascade, Stage, WINDOW};
use fd_imgproc::GrayImage;

/// Per-stage acceptance goals.
#[derive(Debug, Clone, Copy)]
pub struct StageGoals {
    /// Fraction of positives every stage must keep (e.g. 0.995).
    pub min_detection_rate: f64,
    /// Fraction of current negatives a finished stage may still accept
    /// (e.g. 0.5).
    pub max_false_positive_rate: f64,
    /// Hard cap on stumps per stage.
    pub max_stumps_per_stage: usize,
    /// Floor on stumps per stage. Production cascades keep adding weak
    /// classifiers beyond the false-positive goal to harden the stage
    /// against unseen content (the stock OpenCV frontal cascade opens
    /// with 9+ features); the floor reproduces that structure when the
    /// synthetic negative pool is easier than real photographs.
    pub min_stumps_per_stage: usize,
}

impl Default for StageGoals {
    fn default() -> Self {
        Self {
            min_detection_rate: 0.995,
            max_false_positive_rate: 0.5,
            max_stumps_per_stage: 60,
            min_stumps_per_stage: 1,
        }
    }
}

/// Full trainer configuration.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    pub goals: StageGoals,
    pub max_stages: usize,
    /// Negative-pool size per stage.
    pub negatives_per_stage: usize,
    /// Bootstrap candidate budget per stage (gives up when the cascade
    /// has become too good at rejecting the background distribution).
    pub bootstrap_budget: usize,
    /// Seed for the negative source.
    pub seed: u64,
    /// Print per-stage progress on stderr.
    pub verbose: bool,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            goals: StageGoals::default(),
            max_stages: 25,
            negatives_per_stage: 500,
            bootstrap_budget: 200_000,
            seed: 0x5eed,
            verbose: false,
        }
    }
}

/// Per-stage training statistics.
#[derive(Debug, Clone)]
pub struct StageStats {
    pub stumps: usize,
    /// Detection rate on the positive set after threshold calibration.
    pub detection_rate: f64,
    /// False-positive rate on the stage's negative pool.
    pub false_positive_rate: f64,
}

/// A trained cascade plus bookkeeping.
#[derive(Debug, Clone)]
pub struct TrainedCascade {
    pub cascade: Cascade,
    pub stages: Vec<StageStats>,
    /// Total boosting rounds executed.
    pub rounds: usize,
    /// Parallelizable row-ops executed across all rounds (SMP model input).
    pub parallel_ops: u64,
}

/// Train a cascade on `positives` with bootstrapped synthetic negatives.
pub fn train_cascade(
    learner: &dyn WeakLearner,
    name: &str,
    positives: &[GrayImage],
    negatives: &mut NegativeSource,
    config: &TrainerConfig,
) -> TrainedCascade {
    assert!(!positives.is_empty(), "need positive samples");
    let pos_set =
        TrainingSet::from_samples(positives.iter().map(|i| (i, 1.0f32)));

    let mut cascade = Cascade::new(name, WINDOW);
    let mut stats = Vec::new();
    let mut rounds = 0usize;
    let mut parallel_ops = 0u64;

    // Stage-0 negatives are unconditioned; later pools are bootstrapped
    // against the growing cascade.
    let mut neg_imgs = negatives.initial(config.negatives_per_stage);

    for stage_idx in 0..config.max_stages {
        if neg_imgs.is_empty() {
            if config.verbose {
                eprintln!("[train {name}] negatives exhausted; stopping at stage {stage_idx}");
            }
            break;
        }
        let neg_set =
            TrainingSet::from_samples(neg_imgs.iter().map(|i| (i, -1.0f32)));
        let set = pos_set.concat(&neg_set);
        let mut weights = initial_weights(&set);

        // Running strong-classifier outputs per sample for this stage.
        let mut scores = vec![0.0f32; set.len()];
        let mut stage = Stage { stumps: Vec::new(), threshold: 0.0 };
        let (mut dr, mut fpr) = (0.0f64, 1.0f64);

        while stage.stumps.len() < config.goals.max_stumps_per_stage {
            let stump = learner.fit_round(&set, &weights);
            parallel_ops += learner.round_parallel_ops(set.len());
            rounds += 1;
            let outputs = update_weights(&stump, &set, &mut weights);
            for (s, o) in scores.iter_mut().zip(&outputs) {
                *s += o;
            }
            stage.stumps.push(stump);

            // Calibrate the stage threshold on the positive scores so at
            // least `min_detection_rate` of them pass.
            let mut pos_scores: Vec<f32> = scores[..pos_set.len()].to_vec();
            pos_scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let drop = ((1.0 - config.goals.min_detection_rate)
                * pos_scores.len() as f64)
                .floor() as usize;
            let threshold = pos_scores[drop.min(pos_scores.len() - 1)];
            stage.threshold = threshold;

            let passed_pos =
                scores[..pos_set.len()].iter().filter(|&&s| s >= threshold).count();
            let passed_neg =
                scores[pos_set.len()..].iter().filter(|&&s| s >= threshold).count();
            dr = passed_pos as f64 / pos_set.len() as f64;
            fpr = passed_neg as f64 / neg_set.len() as f64;
            if fpr <= config.goals.max_false_positive_rate
                && stage.stumps.len() >= config.goals.min_stumps_per_stage
            {
                break;
            }
        }

        if config.verbose {
            eprintln!(
                "[train {name}] stage {stage_idx}: {} stumps, dr {dr:.4}, fpr {fpr:.4}",
                stage.stumps.len()
            );
        }
        stats.push(StageStats {
            stumps: stage.stumps.len(),
            detection_rate: dr,
            false_positive_rate: fpr,
        });
        cascade.stages.push(stage);

        if stage_idx + 1 < config.max_stages {
            neg_imgs =
                negatives.bootstrap(&cascade, config.negatives_per_stage, config.bootstrap_budget);
        }
    }

    TrainedCascade { cascade, stages: stats, rounds, parallel_ops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gentle::GentleBoost;
    use crate::synthdata::synth_faces;
    use crate::AdaBoost;
    use fd_haar::{enumerate_features, EnumerationRule};
    use fd_imgproc::IntegralImage;

    fn quick_pool() -> Vec<fd_haar::HaarFeature> {
        enumerate_features(24, EnumerationRule::Icpp2012)
            .into_iter()
            .step_by(331)
            .collect()
    }

    fn quick_config(stages: usize) -> TrainerConfig {
        TrainerConfig {
            goals: StageGoals {
                min_detection_rate: 0.98,
                max_false_positive_rate: 0.5,
                max_stumps_per_stage: 12,
                min_stumps_per_stage: 1,
            },
            max_stages: stages,
            negatives_per_stage: 80,
            bootstrap_budget: 20_000,
            seed: 5,
            verbose: false,
        }
    }

    #[test]
    fn gentleboost_cascade_learns_synthetic_faces() {
        let faces = synth_faces(60, 11);
        let mut negs = NegativeSource::new(22);
        let gb = GentleBoost::new(quick_pool());
        let trained = train_cascade(&gb, "test-gentle", &faces, &mut negs, &quick_config(3));
        assert!(!trained.cascade.stages.is_empty());
        assert!(trained.rounds >= trained.cascade.depth() as usize);
        assert!(trained.parallel_ops > 0);

        // Held-out faces mostly pass; held-out flat negatives mostly fail.
        let test_faces = synth_faces(30, 999);
        let hits = test_faces
            .iter()
            .filter(|f| trained.cascade.classify(&IntegralImage::from_gray(f), 0, 0))
            .count();
        assert!(hits >= 24, "only {hits}/30 held-out faces detected");

        let mut src = NegativeSource::new(777);
        let test_negs = src.initial(60);
        let fps = test_negs
            .iter()
            .filter(|f| trained.cascade.classify(&IntegralImage::from_gray(f), 0, 0))
            .count();
        // 3 stages at <= 0.5 fpr each: expect <= ~20% survivors.
        assert!(fps <= 20, "{fps}/60 negatives passed a 3-stage cascade");
    }

    #[test]
    fn stage_stats_respect_goals() {
        let faces = synth_faces(50, 3);
        let mut negs = NegativeSource::new(4);
        let gb = GentleBoost::new(quick_pool());
        let cfg = quick_config(2);
        let trained = train_cascade(&gb, "t", &faces, &mut negs, &cfg);
        for st in &trained.stages {
            assert!(st.detection_rate >= cfg.goals.min_detection_rate - 1e-9);
            assert!(
                st.false_positive_rate <= cfg.goals.max_false_positive_rate + 1e-9
                    || st.stumps == cfg.goals.max_stumps_per_stage
            );
        }
    }

    #[test]
    fn adaboost_needs_at_least_as_many_stumps_as_gentleboost() {
        // The mechanism behind the paper's 2913 vs 1446 classifier counts.
        let faces = synth_faces(60, 8);
        let pool = quick_pool();
        let cfg = quick_config(2);

        let mut negs = NegativeSource::new(31);
        let gb = GentleBoost::new(pool.clone());
        let g = train_cascade(&gb, "g", &faces, &mut negs, &cfg);

        let mut negs = NegativeSource::new(31);
        let ab = AdaBoost::new(pool);
        let a = train_cascade(&ab, "a", &faces, &mut negs, &cfg);

        assert!(
            a.cascade.total_stumps() >= g.cascade.total_stumps(),
            "ada {} vs gentle {}",
            a.cascade.total_stumps(),
            g.cascade.total_stumps()
        );
    }
}
