//! Features lowered to dataset-row lookup tables.
//!
//! A Haar rectangle's sum is `D - B - C + A` over four integral entries;
//! with the dataset's column packing each entry is one matrix row. Summing
//! over the feature's weighted rectangles and collapsing corners shared
//! between adjacent rectangles gives a short list of `(row, coefficient)`
//! terms. The paper's Fig. 4 evaluates an edge feature with 8 row
//! references (its two shared corners kept separate);
//! [`FeatureLut::from_feature`] additionally merges those shared corners,
//! so an edge feature costs 6 row passes and a line feature 8.

use std::collections::BTreeMap;

use crate::dataset::{TrainingSet, TABLE_SIDE};
use fd_haar::HaarFeature;

/// A feature compiled to `(dataset row, coefficient)` terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureLut {
    pub terms: Vec<(u32, i32)>,
}

impl FeatureLut {
    /// Compile a feature, collapsing shared corners.
    pub fn from_feature(f: &HaarFeature) -> Self {
        let mut acc: BTreeMap<u32, i32> = BTreeMap::new();
        for r in f.rects() {
            let (x, y) = (r.x as usize, r.y as usize);
            let (w, h) = (r.w as usize, r.h as usize);
            let wgt = r.weight as i32;
            let idx = |xx: usize, yy: usize| (yy * TABLE_SIDE + xx) as u32;
            // D - B - C + A, each scaled by the rectangle weight.
            *acc.entry(idx(x + w, y + h)).or_default() += wgt;
            *acc.entry(idx(x + w, y)).or_default() -= wgt;
            *acc.entry(idx(x, y + h)).or_default() -= wgt;
            *acc.entry(idx(x, y)).or_default() += wgt;
        }
        acc.retain(|_, c| *c != 0);
        Self { terms: acc.into_iter().collect() }
    }

    /// Evaluate the feature for *every* sample of the set, accumulating
    /// into `out` (length = set size). This is the hot loop of training:
    /// one contiguous row pass per term.
    pub fn eval_all(&self, set: &TrainingSet, out: &mut [i32]) {
        assert_eq!(out.len(), set.len());
        out.fill(0);
        for &(row, coeff) in &self.terms {
            let src = set.row(row as usize);
            match coeff {
                1 => {
                    for (o, &s) in out.iter_mut().zip(src) {
                        *o += s;
                    }
                }
                -1 => {
                    for (o, &s) in out.iter_mut().zip(src) {
                        *o -= s;
                    }
                }
                c => {
                    for (o, &s) in out.iter_mut().zip(src) {
                        *o += c * s;
                    }
                }
            }
        }
    }

    /// Number of row operations one [`FeatureLut::eval_all`] performs per
    /// sample (used by the SMP work model).
    pub fn ops_per_sample(&self) -> usize {
        self.terms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_haar::{enumerate_features, EnumerationRule, FeatureKind};
    use fd_imgproc::GrayImage;

    fn random_image(seed: u32) -> GrayImage {
        GrayImage::from_fn(24, 24, |x, y| {
            ((x as u32 * 73 + y as u32 * 151 + seed).wrapping_mul(2654435761) >> 24) as f32
        })
    }

    #[test]
    fn edge_feature_collapses_to_six_terms() {
        // The paper's Fig. 4 edge evaluation touches 8 dataset rows; the
        // two corners shared between the adjacent cells merge here,
        // leaving 6 terms with coefficients (-1, +2, -1) / (+1, -2, +1).
        let f = fd_haar::HaarFeature::from_params(FeatureKind::EdgeH, 4, 4, 5, 6);
        let lut = FeatureLut::from_feature(&f);
        assert_eq!(lut.terms.len(), 6);
        let mut coeffs: Vec<i32> = lut.terms.iter().map(|&(_, c)| c).collect();
        coeffs.sort_unstable();
        assert_eq!(coeffs, vec![-2, -1, -1, 1, 1, 2]);
    }

    #[test]
    fn line_feature_collapses_to_eight_terms() {
        // 3 rects x 4 corners = 12, but 4 interior corners merge pairwise
        // into coefficients of magnitude 3, matching Fig. 4's 8 rows.
        let f = fd_haar::HaarFeature::from_params(FeatureKind::LineH, 2, 3, 4, 5);
        let lut = FeatureLut::from_feature(&f);
        assert_eq!(lut.terms.len(), 8);
    }

    #[test]
    fn lut_matches_direct_evaluation_for_all_kinds() {
        let imgs: Vec<GrayImage> = (0..3).map(random_image).collect();
        let set = TrainingSet::from_samples(imgs.iter().map(|i| (i, 1.0)));
        let mut out = vec![0i32; set.len()];
        for kind in FeatureKind::ALL {
            let f = fd_haar::HaarFeature::from_params(kind, 2, 2, 3, 4);
            let lut = FeatureLut::from_feature(&f);
            lut.eval_all(&set, &mut out);
            for (col, img) in imgs.iter().enumerate() {
                let ii = fd_imgproc::IntegralImage::from_gray(img);
                assert_eq!(out[col], f.eval(&ii, 0, 0), "{kind:?} col {col}");
            }
        }
    }

    #[test]
    fn lut_matches_direct_evaluation_for_entire_enumeration_sample() {
        let img = random_image(99);
        let ii = fd_imgproc::IntegralImage::from_gray(&img);
        let set = TrainingSet::from_samples([(&img, 1.0)]);
        let mut out = vec![0i32; 1];
        // Spot-check a deterministic stride over the full 103k enumeration.
        for f in enumerate_features(24, EnumerationRule::Icpp2012).iter().step_by(977) {
            let lut = FeatureLut::from_feature(f);
            lut.eval_all(&set, &mut out);
            assert_eq!(out[0], f.eval(&ii, 0, 0), "{f:?}");
        }
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        for f in enumerate_features(24, EnumerationRule::Icpp2012).iter().step_by(2111) {
            let lut = FeatureLut::from_feature(f);
            assert!(lut.terms.iter().all(|&(_, c)| c != 0));
            assert!(lut.terms.len() <= 16);
        }
    }
}
