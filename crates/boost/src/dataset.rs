//! Training-set storage in the paper's column-packed layout (§IV).
//!
//! Every 24x24 sample becomes the 25x25 = 625 entries of its integral
//! image, stored as one column of a row-major `625 x n` matrix. A Haar
//! feature response is then a short linear combination of *rows* of this
//! matrix, evaluated for all samples with contiguous slice arithmetic —
//! the structure the paper exploits with Eigen + SSE4 and that Rust's
//! auto-vectorizer handles natively.

use fd_haar::WINDOW;
use fd_imgproc::{GrayImage, IntegralImage};

/// Integral-table side for the training window (`WINDOW + 1`).
pub const TABLE_SIDE: usize = WINDOW as usize + 1;
/// Rows of the packed dataset matrix (625 for a 24-px window).
pub const TABLE_ROWS: usize = TABLE_SIDE * TABLE_SIDE;

/// Column-packed training set: integral rows x samples, plus labels.
#[derive(Debug, Clone)]
pub struct TrainingSet {
    n: usize,
    /// Row-major `TABLE_ROWS x n`.
    data: Vec<i32>,
    /// `+1.0` for faces, `-1.0` for backgrounds.
    labels: Vec<f32>,
}

impl TrainingSet {
    /// Create an empty set.
    pub fn new() -> Self {
        Self { n: 0, data: Vec::new(), labels: Vec::new() }
    }

    /// Number of samples (columns).
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Labels, one per sample.
    pub fn labels(&self) -> &[f32] {
        &self.labels
    }

    /// One matrix row: integral entry `row` across all samples.
    #[inline]
    pub fn row(&self, row: usize) -> &[i32] {
        &self.data[row * self.n..(row + 1) * self.n]
    }

    /// Build from (image, label) pairs. Images must be `WINDOW x WINDOW`.
    pub fn from_samples<'a>(samples: impl IntoIterator<Item = (&'a GrayImage, f32)>) -> Self {
        let mut tables: Vec<Vec<u32>> = Vec::new();
        let mut labels = Vec::new();
        for (img, label) in samples {
            assert_eq!(
                (img.width(), img.height()),
                (WINDOW as usize, WINDOW as usize),
                "training samples must be {WINDOW}x{WINDOW}"
            );
            let ii = IntegralImage::from_gray(img);
            tables.push(ii.table().to_vec());
            labels.push(label);
        }
        Self::from_tables(tables, labels)
    }

    /// Build from precomputed integral tables (each `TABLE_ROWS` long).
    pub fn from_tables(tables: Vec<Vec<u32>>, labels: Vec<f32>) -> Self {
        assert_eq!(tables.len(), labels.len());
        let n = tables.len();
        let mut data = vec![0i32; TABLE_ROWS * n];
        for (col, t) in tables.iter().enumerate() {
            assert_eq!(t.len(), TABLE_ROWS, "integral table has wrong shape");
            for (row, &v) in t.iter().enumerate() {
                data[row * n + col] = v as i32;
            }
        }
        Self { n, data, labels }
    }

    /// Concatenate two sets (used when replacing bootstrapped negatives).
    pub fn concat(&self, other: &TrainingSet) -> TrainingSet {
        let n = self.n + other.n;
        let mut data = vec![0i32; TABLE_ROWS * n];
        for row in 0..TABLE_ROWS {
            let dst = &mut data[row * n..(row + 1) * n];
            dst[..self.n].copy_from_slice(self.row(row));
            dst[self.n..].copy_from_slice(other.row(row));
        }
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        TrainingSet { n, data, labels }
    }

    /// Keep only the samples selected by `keep` (length `n`).
    pub fn filter(&self, keep: &[bool]) -> TrainingSet {
        assert_eq!(keep.len(), self.n);
        let idx: Vec<usize> = (0..self.n).filter(|&i| keep[i]).collect();
        let n = idx.len();
        let mut data = vec![0i32; TABLE_ROWS * n];
        for row in 0..TABLE_ROWS {
            let src = self.row(row);
            let dst = &mut data[row * n..(row + 1) * n];
            for (j, &i) in idx.iter().enumerate() {
                dst[j] = src[i];
            }
        }
        let labels = idx.iter().map(|&i| self.labels[i]).collect();
        TrainingSet { n, data, labels }
    }

    /// Reconstruct sample `col` as an [`IntegralImage`] (for cross-checks
    /// against direct feature evaluation).
    pub fn integral_of(&self, col: usize) -> IntegralImage {
        assert!(col < self.n);
        let mut table = vec![0u32; TABLE_ROWS];
        for (row, t) in table.iter_mut().enumerate() {
            *t = self.data[row * self.n + col] as u32;
        }
        IntegralImage::from_table(WINDOW as usize, WINDOW as usize, table)
    }

    /// Count of positive-labelled samples.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|&&l| l > 0.0).count()
    }

    /// Count of negative-labelled samples.
    pub fn negatives(&self) -> usize {
        self.n - self.positives()
    }
}

impl Default for TrainingSet {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_imgproc::GrayImage;

    fn img(fill: f32) -> GrayImage {
        GrayImage::from_fn(24, 24, |x, y| (fill + (x + y) as f32) % 256.0)
    }

    #[test]
    fn rows_are_transposed_integral_entries() {
        let a = img(0.0);
        let b = img(100.0);
        let set = TrainingSet::from_samples([(&a, 1.0), (&b, -1.0)]);
        assert_eq!(set.len(), 2);
        let ia = IntegralImage::from_gray(&a);
        let ib = IntegralImage::from_gray(&b);
        // Row corresponding to table entry (y=24,x=24) = total sum.
        let last_row = set.row(TABLE_ROWS - 1);
        assert_eq!(last_row[0] as i64, ia.at(24, 24) as i64);
        assert_eq!(last_row[1] as i64, ib.at(24, 24) as i64);
    }

    #[test]
    fn integral_of_roundtrips() {
        let a = img(37.0);
        let set = TrainingSet::from_samples([(&a, 1.0)]);
        let ii = set.integral_of(0);
        assert_eq!(ii.table(), IntegralImage::from_gray(&a).table());
    }

    #[test]
    fn concat_and_filter_compose() {
        let a = img(0.0);
        let b = img(50.0);
        let c = img(200.0);
        let s1 = TrainingSet::from_samples([(&a, 1.0), (&b, -1.0)]);
        let s2 = TrainingSet::from_samples([(&c, -1.0)]);
        let all = s1.concat(&s2);
        assert_eq!(all.len(), 3);
        assert_eq!(all.labels(), &[1.0, -1.0, -1.0]);
        assert_eq!(all.positives(), 1);
        assert_eq!(all.negatives(), 2);
        let kept = all.filter(&[true, false, true]);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept.labels(), &[1.0, -1.0]);
        assert_eq!(kept.integral_of(1).table(), all.integral_of(2).table());
    }

    #[test]
    #[should_panic(expected = "24x24")]
    fn rejects_wrongly_sized_samples() {
        let bad = GrayImage::new(23, 24);
        let _ = TrainingSet::from_samples([(&bad, 1.0)]);
    }
}
