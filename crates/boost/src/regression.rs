//! Weak-classifier fitting on bucketed feature responses.
//!
//! Fitting a stump exactly would require sorting every feature's responses
//! (`O(n log n)` per feature per round). Like production boosting
//! implementations, responses are instead bucketed into `n_bins` equal-width
//! bins — one `O(n)` accumulation pass followed by an `O(n_bins)` split
//! scan. Thresholds land on bin boundaries; with 256 bins the loss in split
//! resolution is far below the label noise of any real corpus.
//!
//! Two objectives share the accumulation:
//! * [`fit_regression_stump`] — GentleBoost's weighted least squares
//!   (leaves are the weighted class means on each side of the split);
//! * [`fit_discrete_stump`] — discrete AdaBoost's weighted error with the
//!   best polarity.

/// Result of fitting one stump to one feature's responses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StumpFit {
    /// Split point: samples with `response < threshold` go left.
    pub threshold: i32,
    /// Left-leaf output.
    pub left: f32,
    /// Right-leaf output.
    pub right: f32,
    /// Objective value (weighted SSE, or weighted error): lower is better.
    pub loss: f64,
}

struct Bins {
    sw: Vec<f64>,
    swy: Vec<f64>,
    min: i32,
    range: i64,
}

fn accumulate(responses: &[i32], labels: &[f32], weights: &[f64], n_bins: usize) -> Option<Bins> {
    debug_assert_eq!(responses.len(), labels.len());
    debug_assert_eq!(responses.len(), weights.len());
    let (mut min, mut max) = (i32::MAX, i32::MIN);
    for &v in responses {
        min = min.min(v);
        max = max.max(v);
    }
    if min >= max {
        return None; // empty or constant responses: nothing to split
    }
    let range = max as i64 - min as i64 + 1;
    let mut sw = vec![0.0f64; n_bins];
    let mut swy = vec![0.0f64; n_bins];
    for i in 0..responses.len() {
        let b = ((responses[i] as i64 - min as i64) * n_bins as i64 / range) as usize;
        sw[b] += weights[i];
        swy[b] += weights[i] * labels[i] as f64;
    }
    Some(Bins { sw, swy, min, range })
}

/// Threshold value such that `response < threshold` iff the response's bin
/// index is `< b`.
fn bin_threshold(bins: &Bins, b: usize, n_bins: usize) -> i32 {
    let up = (b as i64 * bins.range + n_bins as i64 - 1) / n_bins as i64;
    (bins.min as i64 + up) as i32
}

/// Fit a GentleBoost regression stump minimizing weighted squared error
/// `sum_i w_i (y_i - f(v_i))^2`.
pub fn fit_regression_stump(
    responses: &[i32],
    labels: &[f32],
    weights: &[f64],
    n_bins: usize,
) -> StumpFit {
    let total_w: f64 = weights.iter().sum();
    let total_wy: f64 =
        weights.iter().zip(labels).map(|(&w, &y)| w * y as f64).sum();
    let total_wyy: f64 =
        weights.iter().zip(labels).map(|(&w, &y)| w * (y as f64) * (y as f64)).sum();

    let Some(bins) = accumulate(responses, labels, weights, n_bins) else {
        // No split possible: a single leaf at the weighted mean.
        let mean = if total_w > 0.0 { total_wy / total_w } else { 0.0 };
        let loss = total_wyy - total_w * mean * mean;
        return StumpFit {
            threshold: responses.first().copied().unwrap_or(0),
            left: mean as f32,
            right: mean as f32,
            loss,
        };
    };

    let mut best: Option<StumpFit> = None;
    let mut wl = 0.0f64;
    let mut wyl = 0.0f64;
    for b in 1..n_bins {
        wl += bins.sw[b - 1];
        wyl += bins.swy[b - 1];
        let wr = total_w - wl;
        let wyr = total_wy - wyl;
        if wl <= 0.0 || wr <= 0.0 {
            continue;
        }
        // SSE = sum w y^2 - wyl^2/wl - wyr^2/wr (leaves at weighted means).
        let loss = total_wyy - wyl * wyl / wl - wyr * wyr / wr;
        if best.is_none_or(|f| loss < f.loss) {
            best = Some(StumpFit {
                threshold: bin_threshold(&bins, b, n_bins),
                left: (wyl / wl) as f32,
                right: (wyr / wr) as f32,
                loss,
            });
        }
    }
    best.unwrap_or(StumpFit {
        threshold: bins.min,
        left: (total_wy / total_w) as f32,
        right: (total_wy / total_w) as f32,
        loss: total_wyy - total_wy * total_wy / total_w,
    })
}

/// Fit a discrete AdaBoost stump minimizing the weighted classification
/// error over both polarities. Leaves are `-/+1` votes (scaled to `alpha`
/// by the caller).
pub fn fit_discrete_stump(
    responses: &[i32],
    labels: &[f32],
    weights: &[f64],
    n_bins: usize,
) -> StumpFit {
    let total_w: f64 = weights.iter().sum();
    let total_wp: f64 = weights
        .iter()
        .zip(labels)
        .filter(|&(_, &y)| y > 0.0)
        .map(|(&w, _)| w)
        .sum();
    let total_wn = total_w - total_wp;

    let Some(bins) = accumulate(responses, labels, weights, n_bins) else {
        // Constant responses: predict the heavier class everywhere.
        let (left, loss) =
            if total_wp >= total_wn { (1.0, total_wn) } else { (-1.0, total_wp) };
        return StumpFit {
            threshold: responses.first().copied().unwrap_or(0),
            left,
            right: left,
            loss,
        };
    };

    let mut best: Option<StumpFit> = None;
    let mut wpl = 0.0f64; // positive weight left of the split
    let mut wnl = 0.0f64;
    for b in 1..n_bins {
        // sw = wp + wn, swy = wp - wn per bin.
        wpl += (bins.sw[b - 1] + bins.swy[b - 1]) / 2.0;
        wnl += (bins.sw[b - 1] - bins.swy[b - 1]) / 2.0;
        // Polarity +1: predict -1 left, +1 right.
        let err_pos = wpl + (total_wn - wnl);
        // Polarity -1: the complement.
        let err_neg = total_w - err_pos;
        let (err, left, right) =
            if err_pos <= err_neg { (err_pos, -1.0, 1.0) } else { (err_neg, 1.0, -1.0) };
        if best.is_none_or(|f| err < f.loss) {
            best = Some(StumpFit {
                threshold: bin_threshold(&bins, b, n_bins),
                left,
                right,
                loss: err,
            });
        }
    }
    best.expect("n_bins >= 2 guarantees at least one candidate split")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Perfectly separable data: positives respond high, negatives low.
    fn separable() -> (Vec<i32>, Vec<f32>, Vec<f64>) {
        let responses = vec![-100, -80, -60, 60, 80, 100];
        let labels = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        let weights = vec![1.0 / 6.0; 6];
        (responses, labels, weights)
    }

    #[test]
    fn regression_stump_separates_separable_data() {
        let (r, y, w) = separable();
        let fit = fit_regression_stump(&r, &y, &w, 64);
        assert!(fit.threshold > -60 && fit.threshold <= 60, "thr {}", fit.threshold);
        assert!((fit.left + 1.0).abs() < 1e-6, "left {}", fit.left);
        assert!((fit.right - 1.0).abs() < 1e-6);
        assert!(fit.loss < 1e-9, "separable data must fit exactly, loss {}", fit.loss);
    }

    #[test]
    fn discrete_stump_separates_separable_data() {
        let (r, y, w) = separable();
        let fit = fit_discrete_stump(&r, &y, &w, 64);
        assert!(fit.loss < 1e-12);
        assert_eq!((fit.left, fit.right), (-1.0, 1.0));
    }

    #[test]
    fn discrete_stump_picks_reversed_polarity() {
        let (r, mut y, w) = separable();
        for v in &mut y {
            *v = -*v;
        }
        let fit = fit_discrete_stump(&r, &y, &w, 64);
        assert!(fit.loss < 1e-12);
        assert_eq!((fit.left, fit.right), (1.0, -1.0));
    }

    #[test]
    fn regression_leaves_are_weighted_means() {
        // One negative outweighs two positives on the same side.
        let responses = vec![0, 0, 0, 100];
        let labels = vec![1.0, 1.0, -1.0, 1.0];
        let weights = vec![0.1, 0.1, 0.6, 0.2];
        let fit = fit_regression_stump(&responses, &labels, &weights, 16);
        // Split separates 0s from 100: left mean = (0.1+0.1-0.6)/0.8 = -0.5.
        assert!((fit.left + 0.5).abs() < 1e-6, "left {}", fit.left);
        assert!((fit.right - 1.0).abs() < 1e-6);
    }

    #[test]
    fn constant_responses_yield_single_leaf() {
        let responses = vec![42, 42, 42];
        let labels = vec![1.0, -1.0, 1.0];
        let weights = vec![1.0 / 3.0; 3];
        let fit = fit_regression_stump(&responses, &labels, &weights, 32);
        assert_eq!(fit.left, fit.right);
        assert!((fit.left - 1.0 / 3.0).abs() < 1e-6);
        let d = fit_discrete_stump(&responses, &labels, &weights, 32);
        assert_eq!(d.left, d.right);
        assert!((d.loss - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn weighting_moves_the_split() {
        // Two interleaved points; up-weighting one pair dominates the fit.
        let responses = vec![0, 10, 20, 30];
        let labels = vec![-1.0, 1.0, -1.0, 1.0];
        let heavy_late = vec![0.05, 0.05, 0.45, 0.45];
        let fit = fit_regression_stump(&responses, &labels, &heavy_late, 64);
        // The split must separate 20 from 30.
        assert!(fit.threshold > 20 && fit.threshold <= 30, "thr {}", fit.threshold);
    }

    #[test]
    fn threshold_respects_bucket_semantics() {
        // All predictions must agree with re-evaluating `v < thr`.
        let responses = vec![-7, -3, 1, 2, 9, 11, 40];
        let labels = vec![-1.0, -1.0, -1.0, 1.0, 1.0, 1.0, 1.0];
        let weights = vec![1.0 / 7.0; 7];
        let fit = fit_regression_stump(&responses, &labels, &weights, 8);
        // Recompute the SSE from the returned stump and compare.
        let mut sse = 0.0f64;
        for (&v, &y) in responses.iter().zip(&labels) {
            let f = if v < fit.threshold { fit.left } else { fit.right };
            let d = y as f64 - f as f64;
            sse += d * d / 7.0;
        }
        assert!((sse - fit.loss).abs() < 1e-9, "reported {} recomputed {}", fit.loss, sse);
    }
}
