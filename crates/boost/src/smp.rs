//! SMP scaling model for the training loop (paper Fig. 8).
//!
//! The paper measures one GentleBoost iteration — the full sweep over
//! every Haar combination for every training image — on two machines while
//! varying `OMP_NUM_THREADS` from 1 to 8: a dual quad-core Xeon E5472
//! (~370 s single-threaded) and a Core i7-2600K (~185 s, i.e. 2x faster),
//! both reaching ~3.5x speedup at 8 threads.
//!
//! The reproduction host cannot replay that experiment directly (it may
//! have a single core; the reference environment for this repository
//! does), so Fig. 8 is regenerated in two parts:
//!
//! 1. the *work* of an iteration (parallelizable row-ops of the feature
//!    sweep, serial ops of ranking/reweighting) is measured from the real
//!    implementation ([`IterationWork::from_learner`]);
//! 2. the work is replayed through calibrated [`MachineProfile`]s whose
//!    parameters encode documented hardware characteristics: per-core
//!    effective throughput (anchored so the paper's full workload lands at
//!    the paper's single-thread times), physical core counts, SMT yield
//!    (i7: 4 cores + HT), and a per-thread coordination/bandwidth penalty
//!    (large for the FSB-based Xeon, small for the on-die-controller i7).
//!
//! [`run_with_threads`] additionally runs the *real* Rayon sweep under a
//! pool of any size for wall-clock measurements on hosts that do have
//! cores to scale across.

use crate::dataset::TrainingSet;
use crate::gentle::WeakLearner;

/// Work content of one boosting iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationWork {
    /// Row-operations in the parallel feature sweep.
    pub parallel_ops: u64,
    /// Operations in the serial section (ranking, weight update).
    pub serial_ops: u64,
}

impl IterationWork {
    /// Measure from a learner and a training-set size.
    pub fn from_learner(learner: &dyn WeakLearner, n_samples: usize) -> Self {
        Self {
            parallel_ops: learner.round_parallel_ops(n_samples),
            serial_ops: learner.round_serial_ops(n_samples),
        }
    }

    /// The paper's full workload: the complete 103 607-feature enumeration
    /// over 11 742 faces + 3 500 backgrounds. Row-ops are computed exactly
    /// from the feature LUT sizes.
    pub fn paper_workload() -> Self {
        use fd_haar::{enumerate_features, EnumerationRule};
        let n_samples = 11_742 + 3_500;
        let parallel_ops: u64 = enumerate_features(24, EnumerationRule::Icpp2012)
            .iter()
            .map(|f| {
                let lut = crate::lut::FeatureLut::from_feature(f);
                (lut.ops_per_sample() + 2) as u64 * n_samples as u64 + 256
            })
            .sum();
        Self { parallel_ops, serial_ops: 4 * n_samples as u64 }
    }

    pub fn total_ops(&self) -> u64 {
        self.parallel_ops + self.serial_ops
    }
}

/// Calibrated machine model.
#[derive(Debug, Clone)]
pub struct MachineProfile {
    pub name: &'static str,
    /// Physical cores visible to the scheduler.
    pub physical_cores: u32,
    /// Fraction of a core an extra SMT thread contributes (0 = no SMT).
    pub smt_yield: f64,
    /// Effective row-ops per second per core, anchored to the paper.
    pub ops_per_sec: f64,
    /// Per-extra-thread penalty folding in synchronization cost and,
    /// dominantly, memory-bandwidth contention: the sweep streams the
    /// whole dataset per feature, so threads compete for DRAM. Large for
    /// the FSB-based Xeon, smaller for the on-die-controller i7.
    pub sync_overhead: f64,
}

impl MachineProfile {
    /// Dual Intel Xeon E5472 (2 x 4 cores, 3.0 GHz, FSB memory path).
    /// Throughput anchored so [`IterationWork::paper_workload`] takes
    /// ~370 s on one thread; the FSB shows up as a large per-thread
    /// contention penalty.
    pub fn dual_xeon_e5472() -> Self {
        Self {
            name: "Dual Intel Xeon E5472",
            physical_cores: 8,
            smt_yield: 0.0,
            ops_per_sec: 4.3e7,
            sync_overhead: 0.18,
        }
    }

    /// Intel Core i7-2600K (4 cores + HT, 3.4 GHz, on-die memory
    /// controller): ~2x the per-core throughput of the Xeon (the paper's
    /// observation), modest SMT yield, small contention penalty.
    pub fn core_i7_2600k() -> Self {
        Self {
            name: "Intel Core i7-2600K",
            physical_cores: 4,
            smt_yield: 0.42,
            ops_per_sec: 8.6e7,
            sync_overhead: 0.089,
        }
    }

    /// Effective parallel capacity at `threads` software threads.
    pub fn effective_threads(&self, threads: u32) -> f64 {
        let phys = threads.min(self.physical_cores) as f64;
        let smt = threads.saturating_sub(self.physical_cores).min(self.physical_cores) as f64;
        phys + self.smt_yield * smt
    }

    /// Predicted wall time (seconds) for one iteration at `threads`.
    pub fn predict_seconds(&self, work: &IterationWork, threads: u32) -> f64 {
        assert!(threads >= 1);
        let serial = work.serial_ops as f64 / self.ops_per_sec;
        let eff = self.effective_threads(threads);
        let contention = 1.0 + self.sync_overhead * (threads as f64 - 1.0);
        let parallel = work.parallel_ops as f64 / (self.ops_per_sec * eff) * contention;
        serial + parallel
    }

    /// Predicted speedup at `threads` relative to one thread.
    pub fn predict_speedup(&self, work: &IterationWork, threads: u32) -> f64 {
        self.predict_seconds(work, 1) / self.predict_seconds(work, threads)
    }
}

/// Run `f` inside a Rayon pool of exactly `threads` threads (the
/// `OMP_NUM_THREADS` sweep of the paper, for hosts with real cores).
pub fn run_with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build thread pool")
        .install(f)
}

/// Wall-clock one real boosting round at a given thread count.
pub fn measure_round_seconds(
    learner: &(dyn WeakLearner + Sync),
    set: &TrainingSet,
    threads: usize,
) -> f64 {
    let weights = crate::gentle::initial_weights(set);
    run_with_threads(threads, || {
        let t0 = std::time::Instant::now();
        let _ = learner.fit_round(set, &weights);
        t0.elapsed().as_secs_f64()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paperish_work() -> IterationWork {
        // ~103k features x ~15k samples x ~10 ops: precomputed to keep the
        // test fast; the exact figure is covered by paper_workload tests
        // in the bench crate.
        IterationWork { parallel_ops: 16_000_000_000, serial_ops: 61_000 }
    }

    #[test]
    fn xeon_single_thread_lands_near_the_papers_370s() {
        let w = paperish_work();
        let t = MachineProfile::dual_xeon_e5472().predict_seconds(&w, 1);
        assert!((300.0..450.0).contains(&t), "Xeon 1-thread {t:.0}s");
    }

    #[test]
    fn i7_is_about_twice_the_xeon() {
        let w = paperish_work();
        let xeon = MachineProfile::dual_xeon_e5472().predict_seconds(&w, 1);
        let i7 = MachineProfile::core_i7_2600k().predict_seconds(&w, 1);
        let ratio = xeon / i7;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn both_machines_reach_about_3_5x_at_8_threads() {
        let w = paperish_work();
        for m in [MachineProfile::dual_xeon_e5472(), MachineProfile::core_i7_2600k()] {
            let s = m.predict_speedup(&w, 8);
            assert!((3.0..4.2).contains(&s), "{}: speedup {s:.2}", m.name);
        }
    }

    #[test]
    fn speedup_is_monotone_in_threads() {
        let w = paperish_work();
        for m in [MachineProfile::dual_xeon_e5472(), MachineProfile::core_i7_2600k()] {
            let mut prev = 0.0;
            for t in 1..=8 {
                let s = m.predict_speedup(&w, t);
                assert!(s > prev, "{} at {t} threads: {s} <= {prev}", m.name);
                prev = s;
            }
        }
    }

    #[test]
    fn effective_threads_model_smt() {
        let i7 = MachineProfile::core_i7_2600k();
        assert_eq!(i7.effective_threads(4), 4.0);
        assert!((i7.effective_threads(8) - (4.0 + 0.42 * 4.0)).abs() < 1e-12);
        let xeon = MachineProfile::dual_xeon_e5472();
        assert_eq!(xeon.effective_threads(8), 8.0);
        assert_eq!(xeon.effective_threads(12), 8.0);
    }

    #[test]
    fn run_with_threads_executes_in_sized_pool() {
        let n = run_with_threads(3, rayon::current_num_threads);
        assert_eq!(n, 3);
    }
}
