//! WaldBoost (Sochman & Matas, CVPR 2005) — the learning algorithm behind
//! the related-work detector of Herout et al. that the paper's §II
//! discusses ("a new GPU object detector based on WaldBoost and LRP
//! features").
//!
//! WaldBoost combines AdaBoost with Wald's sequential probability ratio
//! test: the strong classifier is a single monolithic sum (no stage
//! structure), and after every weak classifier the running score is
//! compared against a rejection threshold derived from the likelihood
//! ratio of the two classes at that prefix. A window is rejected as soon
//! as the evidence against "face" is strong enough, giving the same
//! early-exit economics as a cascade without hand-tuned stage boundaries.
//!
//! This implementation trains the monolithic classifier with the crate's
//! weak learners and calibrates the per-position rejection thresholds
//! from training traces: position `t`'s threshold is the largest score
//! below which the false-negative mass stays within the per-position
//! miss budget `alpha / T` while the rejected mass is dominated by
//! negatives — the empirical SPRT decision `A = (1 - beta) / alpha`
//! evaluated on score histograms, as in the original paper's practical
//! variant.

use crate::dataset::TrainingSet;
use crate::gentle::{initial_weights, update_weights, WeakLearner};
use fd_haar::{CascadeEval, Stump, WINDOW};
use fd_imgproc::IntegralImage;

/// A WaldBoost strong classifier with per-position rejection thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct WaldBoostClassifier {
    pub name: String,
    pub window: u32,
    pub stumps: Vec<Stump>,
    /// `reject_below[t]`: reject when the running sum after stump `t`
    /// falls strictly below this value. `NEG_INFINITY` disables the test
    /// at that position.
    pub reject_below: Vec<f32>,
    /// Final acceptance threshold on the complete sum.
    pub accept_threshold: f32,
}

/// Training configuration.
#[derive(Debug, Clone, Copy)]
pub struct WaldBoostConfig {
    /// Number of weak classifiers (boosting rounds).
    pub rounds: usize,
    /// Total false-negative budget spent by the early-exit tests
    /// (Wald's `alpha`), spread uniformly over positions.
    pub alpha: f64,
    /// Fraction of positives that must pass the final threshold.
    pub final_detection_rate: f64,
}

impl Default for WaldBoostConfig {
    fn default() -> Self {
        Self { rounds: 40, alpha: 0.05, final_detection_rate: 0.98 }
    }
}

impl WaldBoostClassifier {
    /// Train on a fixed positive/negative set with the given weak learner.
    pub fn train(
        learner: &dyn WeakLearner,
        name: &str,
        set: &TrainingSet,
        config: &WaldBoostConfig,
    ) -> Self {
        assert!(config.rounds >= 1);
        assert!(set.positives() > 0 && set.negatives() > 0, "need both classes");
        assert!((0.0..1.0).contains(&config.alpha));

        let n = set.len();
        let labels = set.labels().to_vec();
        let mut weights = initial_weights(set);
        let mut stumps = Vec::with_capacity(config.rounds);
        // Running scores per sample, per position (traces for calibration).
        let mut scores = vec![0.0f32; n];
        let mut traces: Vec<Vec<f32>> = Vec::with_capacity(config.rounds);

        for _ in 0..config.rounds {
            let stump = learner.fit_round(set, &weights);
            let outputs = update_weights(&stump, set, &mut weights);
            for (s, o) in scores.iter_mut().zip(&outputs) {
                *s += o;
            }
            stumps.push(stump);
            traces.push(scores.clone());
        }

        // Per-position miss budget.
        let n_pos = set.positives();
        let per_pos_misses =
            ((config.alpha / config.rounds as f64) * n_pos as f64).floor() as usize;

        // Calibrate rejection thresholds: at each position, the threshold
        // is the highest value that (a) loses at most the per-position
        // budget of *still-alive* positives and (b) rejects at least as
        // many negatives as positives (empirical likelihood ratio < 1).
        let mut alive = vec![true; n];
        let mut reject_below = Vec::with_capacity(config.rounds);
        for trace in &traces {
            let mut pos_scores: Vec<f32> = (0..n)
                .filter(|&i| alive[i] && labels[i] > 0.0)
                .map(|i| trace[i])
                .collect();
            if pos_scores.is_empty() {
                reject_below.push(f32::NEG_INFINITY);
                continue;
            }
            pos_scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let candidate = pos_scores[per_pos_misses.min(pos_scores.len() - 1)] - 1e-4;

            // Likelihood check: among alive samples below the candidate,
            // negatives must dominate, otherwise disable the test here.
            let mut pos_below = 0usize;
            let mut neg_below = 0usize;
            for i in 0..n {
                if alive[i] && trace[i] < candidate {
                    if labels[i] > 0.0 {
                        pos_below += 1;
                    } else {
                        neg_below += 1;
                    }
                }
            }
            let threshold =
                if neg_below > pos_below { candidate } else { f32::NEG_INFINITY };
            reject_below.push(threshold);
            if threshold.is_finite() {
                for i in 0..n {
                    if alive[i] && trace[i] < threshold {
                        alive[i] = false;
                    }
                }
            }
        }

        // Final acceptance threshold: keep `final_detection_rate` of the
        // surviving positives.
        let mut surviving_pos: Vec<f32> = (0..n)
            .filter(|&i| alive[i] && labels[i] > 0.0)
            .map(|i| traces[config.rounds - 1][i])
            .collect();
        surviving_pos.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let accept_threshold = if surviving_pos.is_empty() {
            0.0
        } else {
            let drop = ((1.0 - config.final_detection_rate) * surviving_pos.len() as f64)
                .floor() as usize;
            surviving_pos[drop.min(surviving_pos.len() - 1)] - 1e-4
        };

        Self {
            name: name.to_string(),
            window: WINDOW,
            stumps,
            reject_below,
            accept_threshold,
        }
    }

    /// Number of weak classifiers.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }

    /// Evaluate one window with the SPRT early exit. `depth` is the
    /// number of stumps evaluated; `score` the running sum at exit.
    pub fn eval_window(&self, ii: &IntegralImage, ox: usize, oy: usize) -> CascadeEval {
        let mut sum = 0.0f32;
        for (t, stump) in self.stumps.iter().enumerate() {
            sum += stump.eval(ii, ox, oy);
            if sum < self.reject_below[t] {
                return CascadeEval { depth: t as u32 + 1, score: sum };
            }
        }
        CascadeEval { depth: self.stumps.len() as u32, score: sum }
    }

    /// Whether the window survives every test and the final threshold.
    pub fn classify(&self, ii: &IntegralImage, ox: usize, oy: usize) -> bool {
        let e = self.eval_window(ii, ox, oy);
        e.depth as usize == self.stumps.len() && e.score >= self.accept_threshold
    }

    /// Mean stumps evaluated per window over an integral image.
    pub fn mean_depth(&self, ii: &IntegralImage) -> f64 {
        let w = self.window as usize;
        if ii.width() < w || ii.height() < w {
            return 0.0;
        }
        let mut total = 0u64;
        let mut count = 0u64;
        for oy in 0..=ii.height() - w {
            for ox in 0..=ii.width() - w {
                total += self.eval_window(ii, ox, oy).depth as u64;
                count += 1;
            }
        }
        total as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gentle::GentleBoost;
    use crate::synthdata::{synth_faces, NegativeSource};
    use fd_haar::{enumerate_features, EnumerationRule};
    use fd_imgproc::GrayImage;

    fn corpus() -> TrainingSet {
        let faces = synth_faces(120, 31);
        let negs = NegativeSource::new(32).initial(120);
        let samples: Vec<(&GrayImage, f32)> = faces
            .iter()
            .map(|f| (f, 1.0))
            .chain(negs.iter().map(|g| (g, -1.0)))
            .collect();
        TrainingSet::from_samples(samples)
    }

    fn pool() -> Vec<fd_haar::HaarFeature> {
        enumerate_features(24, EnumerationRule::Icpp2012)
            .into_iter()
            .step_by(199)
            .collect()
    }

    fn train_small() -> WaldBoostClassifier {
        let set = corpus();
        let learner = GentleBoost::new(pool());
        WaldBoostClassifier::train(
            &learner,
            "wald-test",
            &set,
            &WaldBoostConfig { rounds: 40, alpha: 0.05, final_detection_rate: 0.97 },
        )
    }

    #[test]
    fn training_produces_monotone_usable_classifier() {
        let wb = train_small();
        assert_eq!(wb.len(), 40);
        assert_eq!(wb.reject_below.len(), 40);
        // At least one early-exit test must be active on separable-ish data.
        assert!(
            wb.reject_below.iter().any(|t| t.is_finite()),
            "no SPRT test was ever enabled"
        );
    }

    #[test]
    fn keeps_most_held_out_faces_and_rejects_backgrounds() {
        let wb = train_small();
        let held_faces = synth_faces(60, 77);
        let kept = held_faces
            .iter()
            .filter(|f| wb.classify(&IntegralImage::from_gray(f), 0, 0))
            .count();
        assert!(kept >= 40, "only {kept}/60 held-out faces kept");

        let negs = NegativeSource::new(78).initial(60);
        let fps = negs
            .iter()
            .filter(|g| wb.classify(&IntegralImage::from_gray(g), 0, 0))
            .count();
        assert!(fps <= 20, "{fps}/60 negatives accepted");
    }

    #[test]
    fn early_exit_reduces_mean_depth_on_backgrounds() {
        let wb = train_small();
        let bg = {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            fd_imgproc::synth::render_random_background(&mut rng, 96, 96)
        };
        let filtered = fd_imgproc::filter::antialias_3tap(&bg);
        let ii = IntegralImage::from_gray(&filtered);
        let depth = wb.mean_depth(&ii);
        assert!(
            depth < wb.len() as f64 * 0.8,
            "mean depth {depth:.1} of {} shows no early exit",
            wb.len()
        );
    }

    #[test]
    fn tighter_alpha_rejects_later() {
        // A smaller miss budget forces more conservative (lower)
        // rejection thresholds, so background windows survive longer.
        let set = corpus();
        let learner = GentleBoost::new(pool());
        let tight = WaldBoostClassifier::train(
            &learner,
            "tight",
            &set,
            &WaldBoostConfig { rounds: 15, alpha: 0.01, final_detection_rate: 0.97 },
        );
        let loose = WaldBoostClassifier::train(
            &learner,
            "loose",
            &set,
            &WaldBoostConfig { rounds: 15, alpha: 0.30, final_detection_rate: 0.97 },
        );
        for (t, l) in tight.reject_below.iter().zip(&loose.reject_below) {
            if t.is_finite() && l.is_finite() {
                assert!(t <= l, "tight {t} must not exceed loose {l}");
            }
        }
    }

    #[test]
    fn depth_is_bounded_and_score_finite() {
        let wb = train_small();
        let img = GrayImage::from_fn(24, 24, |x, y| ((x * 37 + y * 59) % 255) as f32);
        let e = wb.eval_window(&IntegralImage::from_gray(&img), 0, 0);
        assert!(e.depth as usize <= wb.len());
        assert!(e.score.is_finite());
    }
}
