//! # fd-boost — boosted-cascade training (paper §IV)
//!
//! Reimplements the paper's offline training pipeline from scratch:
//!
//! * [`dataset`] — the paper's data layout: every 24x24 training image is
//!   stored as one *column* of a big matrix whose rows are integral-image
//!   entries, so a Haar feature evaluates as a handful of row
//!   gathers/AXPYs over the whole training set at once (their Eigen/SSE4
//!   vectorization; here the rows are contiguous slices the compiler
//!   auto-vectorizes);
//! * [`lut`] — features lowered to (row index, coefficient) terms with
//!   shared corners collapsed (the paper's Fig. 4 evaluates an edge
//!   feature with 8 row references; merging shared corners leaves 6);
//! * [`regression`] — weighted regression-stump fitting on bucketed
//!   responses (GentleBoost) and weighted-error stumps (discrete AdaBoost);
//! * [`gentle`] / [`ada`] — the two boosting algorithms; GentleBoost is
//!   the paper's choice, discrete AdaBoost trains the "OpenCV-like"
//!   baseline cascade;
//! * [`wald`] — WaldBoost (Sochman & Matas), the SPRT-based algorithm
//!   behind the Herout et al. related-work detector of the paper's §II:
//!   a monolithic classifier with per-position rejection thresholds;
//! * [`trainer`] — the attentional-cascade builder: per-stage detection /
//!   false-positive goals, stage-threshold calibration on the positive
//!   set, and bootstrapping of hard negatives between stages (the paper's
//!   "additional bootstrapping routine");
//! * [`synthdata`] — synthetic training corpora built on
//!   `fd_imgproc::synth` (see DESIGN.md substitutions);
//! * [`smp`] — the SMP scaling model behind Fig. 8. The host may have any
//!   number of cores (the reference machine for this reproduction has
//!   one), so thread scaling is *modelled*: the iteration's parallel and
//!   serial work are measured from the real implementation and replayed
//!   through calibrated machine profiles (dual Xeon E5472, Core
//!   i7-2600K).
//!
//! Task parallelism over feature combinations uses Rayon
//! (`#pragma omp parallel for` of the paper's Fig. 4); the bootstrapping
//! routine overlaps candidate generation with filtering through a
//! crossbeam channel.

pub mod ada;
pub mod dataset;
pub mod gentle;
pub mod lut;
pub mod regression;
pub mod smp;
pub mod synthdata;
pub mod trainer;
pub mod wald;

#[cfg(test)]
pub(crate) mod testsupport;

pub use ada::AdaBoost;
pub use dataset::TrainingSet;
pub use gentle::{initial_weights, update_weights, FeaturePool, GentleBoost, WeakLearner};
pub use lut::FeatureLut;
pub use regression::{fit_discrete_stump, fit_regression_stump, StumpFit};
pub use synthdata::{synth_faces, NegativeSource};
pub use trainer::{train_cascade, StageGoals, TrainedCascade, TrainerConfig};
pub use wald::{WaldBoostClassifier, WaldBoostConfig};
