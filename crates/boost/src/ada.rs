//! Discrete AdaBoost (Freund & Schapire 1995) — the learning algorithm
//! behind the original Viola-Jones / OpenCV frontal-face cascade the paper
//! benchmarks against. Weak hypotheses are `+/- alpha` threshold votes
//! with `alpha = ln((1 - eps)/eps) / 2`; because the votes are binary
//! rather than real-valued, AdaBoost typically needs roughly twice as many
//! stumps as GentleBoost to hit the same stage goals — the mechanism
//! behind the paper's 2913-vs-1446 classifier counts.

use crate::dataset::TrainingSet;
use crate::gentle::{FeaturePool, WeakLearner};
use crate::regression::fit_discrete_stump;
use fd_haar::{HaarFeature, Stump};

/// Discrete AdaBoost weak learner over a Haar feature pool.
pub struct AdaBoost {
    pub pool: FeaturePool,
    /// Clamp on the weighted error used for alpha (avoids infinite alphas
    /// on separable rounds).
    pub min_error: f64,
}

impl AdaBoost {
    pub fn new(features: Vec<HaarFeature>) -> Self {
        Self { pool: FeaturePool::new(features, 256), min_error: 1e-4 }
    }
}

impl WeakLearner for AdaBoost {
    fn fit_round(&self, set: &TrainingSet, weights: &[f64]) -> Stump {
        let (idx, fit) = self.pool.best_fit(set, weights, fit_discrete_stump);
        let eps = fit.loss.clamp(self.min_error, 1.0 - self.min_error);
        let alpha = (0.5 * ((1.0 - eps) / eps).ln()) as f32;
        Stump {
            feature: self.pool.features[idx],
            threshold: fit.threshold,
            left: fit.left * alpha,
            right: fit.right * alpha,
        }
    }

    fn round_parallel_ops(&self, n_samples: usize) -> u64 {
        self.pool.sweep_ops(n_samples)
    }

    fn n_features(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gentle::initial_weights;
    use crate::testsupport::{small_pool, toy_set};

    #[test]
    fn first_round_separates_toy_data() {
        let set = toy_set();
        let ab = AdaBoost::new(small_pool());
        let w = initial_weights(&set);
        let stump = ab.fit_round(&set, &w);
        assert!(
            (stump.left.abs() - stump.right.abs()).abs() < 1e-6,
            "discrete stump votes are symmetric"
        );
        for col in 0..set.len() {
            let ii = set.integral_of(col);
            let out = stump.eval(&ii, 0, 0);
            assert_eq!(out > 0.0, set.labels()[col] > 0.0);
        }
    }

    #[test]
    fn alpha_is_clamped_on_separable_data() {
        let set = toy_set();
        let ab = AdaBoost::new(small_pool());
        let w = initial_weights(&set);
        let stump = ab.fit_round(&set, &w);
        // eps clamps at 1e-4 -> alpha = ln(9999)/2 ~ 4.6.
        assert!(stump.right.abs() < 5.0);
        assert!(stump.right.abs() > 0.5);
    }

    #[test]
    fn weighted_error_drives_selection() {
        // After heavily up-weighting the negatives, the chosen stump must
        // still classify them correctly.
        let set = toy_set();
        let ab = AdaBoost::new(small_pool());
        let mut w = initial_weights(&set);
        for (wi, &y) in w.iter_mut().zip(set.labels()) {
            if y < 0.0 {
                *wi *= 10.0;
            }
        }
        let total: f64 = w.iter().sum();
        for wi in &mut w {
            *wi /= total;
        }
        let stump = ab.fit_round(&set, &w);
        for col in 0..set.len() {
            if set.labels()[col] < 0.0 {
                let ii = set.integral_of(col);
                assert!(stump.eval(&ii, 0, 0) < 0.0, "negatives must win when heavy");
            }
        }
    }
}
