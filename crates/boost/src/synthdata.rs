//! Synthetic training corpora (substitute for the paper's face databases;
//! see DESIGN.md §2).
//!
//! Faces come from `fd_imgproc::synth`'s procedural frontal-face model;
//! negatives are random windows cut from procedural background textures.
//! Between cascade stages, [`NegativeSource::bootstrap`] regenerates the
//! negative pool with windows the *current* cascade still accepts — the
//! paper's "additional bootstrapping routine ... to avoid redundancy in
//! the set of background images, while improving the discriminative power
//! of the boosting algorithm". Candidate generation runs in a producer
//! thread connected by a crossbeam channel so texture synthesis overlaps
//! cascade filtering.

use crossbeam::channel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fd_haar::{Cascade, WINDOW};
use fd_imgproc::filter::antialias_3tap;
use fd_imgproc::resize::resize_bilinear;
use fd_imgproc::synth::{render_background, render_random_background, BackgroundKind, FaceParams};
use fd_imgproc::{GrayImage, IntegralImage, Rect};

/// Match the detection pipeline's preprocessing: at detection time every
/// pyramid level is bilinearly scaled and low-pass filtered before the
/// integral image is built, so training windows must see the same
/// smoothing or the learned thresholds are miscalibrated (crisp training
/// pixels vs filtered test pixels).
fn pipeline_preprocess(window: &GrayImage) -> GrayImage {
    antialias_3tap(window)
}

/// Stream of negative candidate windows: a mixture of background-texture
/// crops, blob fields, and *decoy* faces (corrupted frontal faces, see
/// `FaceParams::decoy`) composited onto textures. The decoy share is what
/// keeps bootstrapping productive deep into the cascade — without
/// face-like negatives, training runs out of false positives after a
/// handful of stages (the synthetic analogue of a background corpus with
/// no people-adjacent clutter).
struct CandidateStream {
    rng: StdRng,
    tile: usize,
    bg: GrayImage,
    crops_left: usize,
}

impl CandidateStream {
    fn new(seed: u64, tile: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bg = render_random_background(&mut rng, tile, tile);
        Self { rng, tile, bg, crops_left: (tile / WINDOW as usize).pow(2).max(1) }
    }

    fn next(&mut self) -> GrayImage {
        let win = self.next_raw();
        pipeline_preprocess(&win)
    }

    fn next_raw(&mut self) -> GrayImage {
        let w = WINDOW as usize;
        // Mixture: mostly plain textures (matching the statistics of real
        // video frames, so stage-1 thresholds calibrate to natural
        // content), with a decoy/blob minority. Bootstrapping's survivor
        // selection concentrates the hard cases in deeper stages on its
        // own — the raw pool must *contain* hard negatives, not be
        // dominated by them.
        match self.rng.random_range(0..20u32) {
            // Plain texture crops (refreshing the texture periodically).
            0..=13 => {
                if self.crops_left == 0 {
                    self.bg = render_random_background(&mut self.rng, self.tile, self.tile);
                    self.crops_left = (self.tile / w).pow(2).max(1);
                }
                self.crops_left -= 1;
                random_crop(&mut self.rng, &self.bg)
            }
            // Decoy faces composited onto a textured window.
            14..=17 => {
                let mut win = render_background(
                    &mut self.rng,
                    w,
                    w,
                    BackgroundKind::ValueNoise,
                );
                let size = self.rng.random_range(18..=30usize);
                let decoy = FaceParams::decoy(&mut self.rng).render(size);
                let off = (w as i32 - size as i32) / 2 + self.rng.random_range(-2..=2);
                win.blit(&decoy, off, off);
                win
            }
            // Direct blob-field windows (eye-pair lookalikes).
            _ => render_background(&mut self.rng, w, w, BackgroundKind::BlobField),
        }
    }
}

/// Generate `n` synthetic 24x24 face training windows.
///
/// Each face is rendered at a random larger size and bilinearly reduced
/// to the window, then low-pass filtered — the exact transformation a
/// face in a video frame undergoes on its way through the pyramid, so the
/// training distribution matches the windows the cascade will see.
pub fn synth_faces(n: usize, seed: u64) -> Vec<GrayImage> {
    let mut rng = StdRng::seed_from_u64(seed);
    let w = WINDOW as usize;
    (0..n)
        .map(|_| {
            let render_size = (w as f64 * rng.random_range(1.0..2.5)).round() as usize;
            let raw = FaceParams::sample(&mut rng).render(render_size);
            let scaled = if render_size == w { raw } else { resize_bilinear(&raw, w, w) };
            pipeline_preprocess(&scaled)
        })
        .collect()
}

/// Streaming source of negative (background) training windows.
pub struct NegativeSource {
    rng: StdRng,
    /// Side of the intermediate background textures windows are cut from.
    tile: usize,
}

impl NegativeSource {
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed), tile: 96 }
    }

    /// Draw `n` unconditioned negative windows (stage-0 pool).
    pub fn initial(&mut self, n: usize) -> Vec<GrayImage> {
        let mut stream = CandidateStream::new(self.rng.random(), self.tile);
        (0..n).map(|_| stream.next()).collect()
    }

    /// Draw up to `n` windows that the current `cascade` still accepts
    /// (false positives), giving up after `max_candidates` tries.
    ///
    /// Candidate crops are produced by a generator thread and filtered on
    /// the consumer side (task parallelism of the paper's §IV applied to
    /// bootstrapping).
    pub fn bootstrap(
        &mut self,
        cascade: &Cascade,
        n: usize,
        max_candidates: usize,
    ) -> Vec<GrayImage> {
        let tile = self.tile;
        let seed: u64 = self.rng.random();
        let (tx, rx) = channel::bounded::<GrayImage>(256);
        let mut kept = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut stream = CandidateStream::new(seed, tile);
                for _ in 0..max_candidates {
                    if tx.send(stream.next()).is_err() {
                        break;
                    }
                }
                drop(tx);
            });
            for crop in rx.iter() {
                let ii = IntegralImage::from_gray(&crop);
                if cascade.classify(&ii, 0, 0) {
                    kept.push(crop);
                    if kept.len() >= n {
                        break;
                    }
                }
            }
            // Hang up so a still-blocked producer send unblocks and the
            // producer thread exits before the scope joins it.
            drop(rx);
        });
        kept
    }
}

fn random_crop<R: Rng + ?Sized>(rng: &mut R, bg: &GrayImage) -> GrayImage {
    let w = WINDOW as usize;
    let x = rng.random_range(0..=bg.width() - w) as i32;
    let y = rng.random_range(0..=bg.height() - w) as i32;
    bg.crop(Rect::new(x, y, w as u32, w as u32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_faces_are_window_sized_and_distinct() {
        let faces = synth_faces(5, 42);
        assert_eq!(faces.len(), 5);
        for f in &faces {
            assert_eq!((f.width(), f.height()), (24, 24));
        }
        assert_ne!(faces[0].as_slice(), faces[1].as_slice());
    }

    #[test]
    fn synth_faces_are_seed_deterministic() {
        let a = synth_faces(3, 7);
        let b = synth_faces(3, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
    }

    #[test]
    fn initial_negatives_fill_the_pool() {
        let mut src = NegativeSource::new(1);
        let negs = src.initial(40);
        assert_eq!(negs.len(), 40);
        for n in &negs {
            assert_eq!((n.width(), n.height()), (24, 24));
        }
    }

    #[test]
    fn bootstrap_against_empty_cascade_accepts_everything() {
        let mut src = NegativeSource::new(2);
        let c = Cascade::new("empty", 24);
        let negs = src.bootstrap(&c, 10, 100);
        assert_eq!(negs.len(), 10);
    }

    #[test]
    fn bootstrap_respects_candidate_budget() {
        // A cascade that rejects everything: one stage with an impossible
        // threshold.
        let mut c = Cascade::new("reject-all", 24);
        c.stages.push(fd_haar::Stage { stumps: vec![], threshold: f32::INFINITY });
        let mut src = NegativeSource::new(3);
        let negs = src.bootstrap(&c, 10, 200);
        assert!(negs.is_empty());
    }
}
