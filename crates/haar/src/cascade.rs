//! Attentional cascades: stages of boosted stumps with early rejection.
//!
//! A window passes stage `k` when the sum of its stump outputs meets the
//! stage threshold; otherwise evaluation stops — the property that rejects
//! ~94.5 % of background windows at stage 1 in the paper (Fig. 7) and
//! causes the GPU divergence the evaluation kernel must manage.

use crate::stump::Stump;
use fd_imgproc::IntegralImage;

/// Semantic validation failures of a cascade (see [`Cascade::validate`]).
///
/// A cascade that trips any of these is rejected before it can reach
/// `eval_window` or the GPU kernels: a corrupt or adversarial model file
/// must fail at load time with a typed error, never evaluate windows with
/// garbage geometry or non-finite arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub enum CascadeError {
    /// A zero-stage cascade classifies *every* window as a face.
    EmptyCascade,
    /// Detection window outside the supported range.
    BadWindow { window: u32 },
    /// A stage with no stumps has an undefined sum.
    EmptyStage { stage: usize },
    /// Stage threshold is NaN or infinite.
    NonFiniteStageThreshold { stage: usize },
    /// Stage threshold exceeds what the packed constant-memory encoding
    /// can represent ([`crate::encode::LEAF_SCALE`] fixed point in i32).
    AbsurdStageThreshold { stage: usize, threshold: f32 },
    /// No window can ever pass this stage: its threshold exceeds the
    /// largest achievable stage sum, so the stage — and every stage after
    /// it — rejects unconditionally (a non-monotone, dead structure).
    UnsatisfiableStage { stage: usize, threshold: f32, max_sum: f32 },
    /// A stump leaf value is NaN or infinite.
    NonFiniteLeaf { stage: usize, stump: usize },
    /// A stump leaf exceeds the packed encoding's i16 fixed-point range.
    AbsurdLeaf { stage: usize, stump: usize, leaf: f32 },
    /// A stump threshold exceeds the packed encoding's quantization
    /// headroom (i16 multiples of [`crate::encode::THR_STEP`]).
    AbsurdStumpThreshold { stage: usize, stump: usize, threshold: i32 },
    /// A feature with a zero-extent cell evaluates empty rectangles.
    ZeroAreaFeature { stage: usize, stump: usize },
    /// A feature rectangle escapes the detection window: its integral
    /// lookups would read out of bounds on every window.
    FeatureEscapesWindow { stage: usize, stump: usize },
}

impl std::fmt::Display for CascadeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyCascade => write!(f, "cascade has no stages (accepts every window)"),
            Self::BadWindow { window } => write!(
                f,
                "window {window} outside the supported {MIN_WINDOW}..={MAX_WINDOW} px range"
            ),
            Self::EmptyStage { stage } => write!(f, "stage {stage} has no stumps"),
            Self::NonFiniteStageThreshold { stage } => {
                write!(f, "stage {stage} threshold is not finite")
            }
            Self::AbsurdStageThreshold { stage, threshold } => {
                write!(f, "stage {stage} threshold {threshold} exceeds the encodable range")
            }
            Self::UnsatisfiableStage { stage, threshold, max_sum } => write!(
                f,
                "stage {stage} is unsatisfiable: threshold {threshold} exceeds the largest \
                 achievable stage sum {max_sum}"
            ),
            Self::NonFiniteLeaf { stage, stump } => {
                write!(f, "stage {stage} stump {stump} has a non-finite leaf value")
            }
            Self::AbsurdLeaf { stage, stump, leaf } => write!(
                f,
                "stage {stage} stump {stump} leaf {leaf} exceeds the encodable range"
            ),
            Self::AbsurdStumpThreshold { stage, stump, threshold } => write!(
                f,
                "stage {stage} stump {stump} threshold {threshold} exceeds the quantization \
                 headroom"
            ),
            Self::ZeroAreaFeature { stage, stump } => {
                write!(f, "stage {stage} stump {stump} has a zero-area feature")
            }
            Self::FeatureEscapesWindow { stage, stump } => {
                write!(f, "stage {stage} stump {stump} feature escapes the detection window")
            }
        }
    }
}

impl std::error::Error for CascadeError {}

/// Smallest detection window [`Cascade::validate`] accepts.
pub const MIN_WINDOW: u32 = 4;
/// Largest detection window [`Cascade::validate`] accepts (feature
/// geometry is stored in `u8` window coordinates; the paper uses 24).
pub const MAX_WINDOW: u32 = 64;

/// One cascade stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    pub stumps: Vec<Stump>,
    /// A window passes when the stage sum is >= this threshold.
    pub threshold: f32,
}

impl Stage {
    /// Stage sum for a window.
    pub fn sum(&self, ii: &IntegralImage, ox: usize, oy: usize) -> f32 {
        self.stumps.iter().map(|s| s.eval(ii, ox, oy)).sum()
    }

    /// Whether the window passes this stage.
    pub fn passes(&self, ii: &IntegralImage, ox: usize, oy: usize) -> bool {
        self.sum(ii, ox, oy) >= self.threshold
    }
}

/// Result of evaluating a cascade on one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeEval {
    /// Number of stages passed (== number of stages entered minus the
    /// failed one). Equals `stages.len()` for accepted windows — the value
    /// the GPU kernel writes to its deepest-stage output array.
    pub depth: u32,
    /// Sum of stage margins (stage sum minus stage threshold) over every
    /// *entered* stage; a detection confidence usable for ROC sweeps.
    pub score: f32,
}

/// A boosted cascade of Haar stumps.
#[derive(Debug, Clone, PartialEq)]
pub struct Cascade {
    /// Human-readable name ("ours-gentle", "opencv-like-ada", ...).
    pub name: String,
    /// Detection-window side in pixels (24 throughout the paper).
    pub window: u32,
    pub stages: Vec<Stage>,
}

impl Cascade {
    pub fn new(name: impl Into<String>, window: u32) -> Self {
        Self { name: name.into(), window, stages: Vec::new() }
    }

    /// Total number of weak classifiers (the paper compares 1446 vs 2913).
    pub fn total_stumps(&self) -> usize {
        self.stages.iter().map(|s| s.stumps.len()).sum()
    }

    /// Number of stages.
    pub fn depth(&self) -> u32 {
        self.stages.len() as u32
    }

    /// Evaluate the full cascade (with early exit) on the window whose
    /// top-left corner is `(ox, oy)`.
    pub fn eval_window(&self, ii: &IntegralImage, ox: usize, oy: usize) -> CascadeEval {
        let mut depth = 0u32;
        let mut score = 0.0f32;
        for stage in &self.stages {
            let sum = stage.sum(ii, ox, oy);
            score += sum - stage.threshold;
            if sum < stage.threshold {
                return CascadeEval { depth, score };
            }
            depth += 1;
        }
        CascadeEval { depth, score }
    }

    /// Evaluate with early exit after `max_stages` (the 15/20/25-stage
    /// operating points of the paper's Fig. 9).
    pub fn eval_window_truncated(
        &self,
        ii: &IntegralImage,
        ox: usize,
        oy: usize,
        max_stages: usize,
    ) -> CascadeEval {
        let mut depth = 0u32;
        let mut score = 0.0f32;
        for stage in self.stages.iter().take(max_stages) {
            let sum = stage.sum(ii, ox, oy);
            score += sum - stage.threshold;
            if sum < stage.threshold {
                return CascadeEval { depth, score };
            }
            depth += 1;
        }
        CascadeEval { depth, score }
    }

    /// Whether the window passes every stage.
    pub fn classify(&self, ii: &IntegralImage, ox: usize, oy: usize) -> bool {
        self.eval_window(ii, ox, oy).depth == self.depth()
    }

    /// A cascade truncated to its first `n` stages (shares the paper's
    /// Fig. 9 ablation; clones the stages).
    ///
    /// # Contract
    ///
    /// At least one stage is always retained: `n` is clamped to
    /// `1..=self.stages.len()`. A literal zero-stage truncation would
    /// produce a cascade whose `classify` accepts *every* window — a
    /// 100 % false-positive detector — which is never what a truncation
    /// ablation means. Truncating an already-empty cascade stays empty
    /// (there is no stage to retain); such cascades are rejected by
    /// [`Cascade::validate`] before they reach any evaluation path.
    pub fn truncated(&self, n: usize) -> Cascade {
        let n = n.clamp(1, self.stages.len().max(1));
        Cascade {
            name: format!("{}@{}", self.name, n.min(self.stages.len())),
            window: self.window,
            stages: self.stages.iter().take(n).cloned().collect(),
        }
    }

    /// Semantic validation: reject structurally or numerically corrupt
    /// cascades before any window evaluation or device staging.
    ///
    /// Checks, in order: non-empty cascade, supported window, per-stage
    /// non-emptiness and finite/encodable thresholds, per-stump finite and
    /// encodable leaves/thresholds, non-degenerate in-window feature
    /// geometry, and stage satisfiability (a stage whose threshold exceeds
    /// its largest achievable sum rejects every window — a dead cascade).
    /// `fd_haar::io::{from_text, load}` run this after parsing, so a
    /// corrupt `.cascade` asset can never reach `eval_window`.
    pub fn validate(&self) -> Result<(), CascadeError> {
        use crate::encode::{LEAF_SCALE, THR_STEP};
        if self.stages.is_empty() {
            return Err(CascadeError::EmptyCascade);
        }
        if !(MIN_WINDOW..=MAX_WINDOW).contains(&self.window) {
            return Err(CascadeError::BadWindow { window: self.window });
        }
        let max_leaf = i16::MAX as f32 / LEAF_SCALE;
        let max_stump_thr = i16::MAX as i32 * THR_STEP;
        let max_stage_thr = i32::MAX as f32 / LEAF_SCALE;
        for (si, stage) in self.stages.iter().enumerate() {
            if stage.stumps.is_empty() {
                return Err(CascadeError::EmptyStage { stage: si });
            }
            if !stage.threshold.is_finite() {
                return Err(CascadeError::NonFiniteStageThreshold { stage: si });
            }
            if stage.threshold.abs() > max_stage_thr {
                return Err(CascadeError::AbsurdStageThreshold {
                    stage: si,
                    threshold: stage.threshold,
                });
            }
            let mut max_sum = 0.0f64;
            for (ki, s) in stage.stumps.iter().enumerate() {
                if !(s.left.is_finite() && s.right.is_finite()) {
                    return Err(CascadeError::NonFiniteLeaf { stage: si, stump: ki });
                }
                for leaf in [s.left, s.right] {
                    if leaf.abs() > max_leaf {
                        return Err(CascadeError::AbsurdLeaf { stage: si, stump: ki, leaf });
                    }
                }
                if s.threshold.abs() > max_stump_thr {
                    return Err(CascadeError::AbsurdStumpThreshold {
                        stage: si,
                        stump: ki,
                        threshold: s.threshold,
                    });
                }
                let f = &s.feature;
                if f.w == 0 || f.h == 0 {
                    return Err(CascadeError::ZeroAreaFeature { stage: si, stump: ki });
                }
                if !f.fits(self.window) {
                    return Err(CascadeError::FeatureEscapesWindow { stage: si, stump: ki });
                }
                max_sum += s.left.max(s.right) as f64;
            }
            if stage.threshold as f64 > max_sum + 1e-6 {
                return Err(CascadeError::UnsatisfiableStage {
                    stage: si,
                    threshold: stage.threshold,
                    max_sum: max_sum as f32,
                });
            }
        }
        Ok(())
    }

    /// Largest feature-response magnitude bound, used to validate the
    /// packed encoding's quantization headroom.
    pub fn max_abs_threshold(&self) -> i32 {
        self.stages
            .iter()
            .flat_map(|s| &s.stumps)
            .map(|s| s.threshold.abs())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, HaarFeature};
    use fd_imgproc::GrayImage;

    /// Cascade with one stage that accepts iff the image's left/right
    /// contrast is strong.
    fn contrast_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let stump = Stump { feature: f, threshold: 1000, left: -1.0, right: 1.0 };
        let mut c = Cascade::new("test", 24);
        c.stages.push(Stage { stumps: vec![stump], threshold: 0.5 });
        c
    }

    fn contrast_image(hi: f32) -> IntegralImage {
        let img = GrayImage::from_fn(24, 24, |x, _| if x < 12 { 0.0 } else { hi });
        IntegralImage::from_gray(&img)
    }

    #[test]
    fn accepts_and_rejects_by_stage_threshold() {
        let c = contrast_cascade();
        assert!(c.classify(&contrast_image(255.0), 0, 0));
        assert!(!c.classify(&contrast_image(10.0), 0, 0));
    }

    #[test]
    fn eval_depth_counts_passed_stages() {
        let mut c = contrast_cascade();
        // Duplicate the stage three times.
        let s = c.stages[0].clone();
        c.stages.push(s.clone());
        c.stages.push(s);
        let pass = c.eval_window(&contrast_image(255.0), 0, 0);
        assert_eq!(pass.depth, 3);
        let fail = c.eval_window(&contrast_image(10.0), 0, 0);
        assert_eq!(fail.depth, 0);
        assert!(fail.score < pass.score);
    }

    #[test]
    fn truncated_evaluation_matches_truncated_cascade() {
        let mut c = contrast_cascade();
        let s = c.stages[0].clone();
        c.stages.push(s.clone());
        c.stages.push(s);
        let ii = contrast_image(255.0);
        let a = c.eval_window_truncated(&ii, 0, 0, 2);
        let b = c.truncated(2).eval_window(&ii, 0, 0);
        assert_eq!(a.depth, b.depth);
        assert!((a.score - b.score).abs() < 1e-6);
        assert_eq!(c.truncated(2).depth(), 2);
    }

    #[test]
    fn total_stumps_sums_stages() {
        let mut c = contrast_cascade();
        let s = c.stages[0].clone();
        c.stages.push(Stage { stumps: vec![s.stumps[0]; 4], threshold: 0.0 });
        assert_eq!(c.total_stumps(), 5);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn empty_cascade_accepts_everything() {
        let c = Cascade::new("empty", 24);
        assert!(c.classify(&contrast_image(0.0), 0, 0));
        assert_eq!(c.eval_window(&contrast_image(0.0), 0, 0).depth, 0);
    }
}
