//! Attentional cascades: stages of boosted stumps with early rejection.
//!
//! A window passes stage `k` when the sum of its stump outputs meets the
//! stage threshold; otherwise evaluation stops — the property that rejects
//! ~94.5 % of background windows at stage 1 in the paper (Fig. 7) and
//! causes the GPU divergence the evaluation kernel must manage.

use crate::stump::Stump;
use fd_imgproc::IntegralImage;

/// One cascade stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    pub stumps: Vec<Stump>,
    /// A window passes when the stage sum is >= this threshold.
    pub threshold: f32,
}

impl Stage {
    /// Stage sum for a window.
    pub fn sum(&self, ii: &IntegralImage, ox: usize, oy: usize) -> f32 {
        self.stumps.iter().map(|s| s.eval(ii, ox, oy)).sum()
    }

    /// Whether the window passes this stage.
    pub fn passes(&self, ii: &IntegralImage, ox: usize, oy: usize) -> bool {
        self.sum(ii, ox, oy) >= self.threshold
    }
}

/// Result of evaluating a cascade on one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeEval {
    /// Number of stages passed (== number of stages entered minus the
    /// failed one). Equals `stages.len()` for accepted windows — the value
    /// the GPU kernel writes to its deepest-stage output array.
    pub depth: u32,
    /// Sum of stage margins (stage sum minus stage threshold) over every
    /// *entered* stage; a detection confidence usable for ROC sweeps.
    pub score: f32,
}

/// A boosted cascade of Haar stumps.
#[derive(Debug, Clone, PartialEq)]
pub struct Cascade {
    /// Human-readable name ("ours-gentle", "opencv-like-ada", ...).
    pub name: String,
    /// Detection-window side in pixels (24 throughout the paper).
    pub window: u32,
    pub stages: Vec<Stage>,
}

impl Cascade {
    pub fn new(name: impl Into<String>, window: u32) -> Self {
        Self { name: name.into(), window, stages: Vec::new() }
    }

    /// Total number of weak classifiers (the paper compares 1446 vs 2913).
    pub fn total_stumps(&self) -> usize {
        self.stages.iter().map(|s| s.stumps.len()).sum()
    }

    /// Number of stages.
    pub fn depth(&self) -> u32 {
        self.stages.len() as u32
    }

    /// Evaluate the full cascade (with early exit) on the window whose
    /// top-left corner is `(ox, oy)`.
    pub fn eval_window(&self, ii: &IntegralImage, ox: usize, oy: usize) -> CascadeEval {
        let mut depth = 0u32;
        let mut score = 0.0f32;
        for stage in &self.stages {
            let sum = stage.sum(ii, ox, oy);
            score += sum - stage.threshold;
            if sum < stage.threshold {
                return CascadeEval { depth, score };
            }
            depth += 1;
        }
        CascadeEval { depth, score }
    }

    /// Evaluate with early exit after `max_stages` (the 15/20/25-stage
    /// operating points of the paper's Fig. 9).
    pub fn eval_window_truncated(
        &self,
        ii: &IntegralImage,
        ox: usize,
        oy: usize,
        max_stages: usize,
    ) -> CascadeEval {
        let mut depth = 0u32;
        let mut score = 0.0f32;
        for stage in self.stages.iter().take(max_stages) {
            let sum = stage.sum(ii, ox, oy);
            score += sum - stage.threshold;
            if sum < stage.threshold {
                return CascadeEval { depth, score };
            }
            depth += 1;
        }
        CascadeEval { depth, score }
    }

    /// Whether the window passes every stage.
    pub fn classify(&self, ii: &IntegralImage, ox: usize, oy: usize) -> bool {
        self.eval_window(ii, ox, oy).depth == self.depth()
    }

    /// A cascade truncated to its first `n` stages (shares the paper's
    /// Fig. 9 ablation; clones the stages).
    pub fn truncated(&self, n: usize) -> Cascade {
        Cascade {
            name: format!("{}@{}", self.name, n.min(self.stages.len())),
            window: self.window,
            stages: self.stages.iter().take(n).cloned().collect(),
        }
    }

    /// Largest feature-response magnitude bound, used to validate the
    /// packed encoding's quantization headroom.
    pub fn max_abs_threshold(&self) -> i32 {
        self.stages
            .iter()
            .flat_map(|s| &s.stumps)
            .map(|s| s.threshold.abs())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::{FeatureKind, HaarFeature};
    use fd_imgproc::GrayImage;

    /// Cascade with one stage that accepts iff the image's left/right
    /// contrast is strong.
    fn contrast_cascade() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let stump = Stump { feature: f, threshold: 1000, left: -1.0, right: 1.0 };
        let mut c = Cascade::new("test", 24);
        c.stages.push(Stage { stumps: vec![stump], threshold: 0.5 });
        c
    }

    fn contrast_image(hi: f32) -> IntegralImage {
        let img = GrayImage::from_fn(24, 24, |x, _| if x < 12 { 0.0 } else { hi });
        IntegralImage::from_gray(&img)
    }

    #[test]
    fn accepts_and_rejects_by_stage_threshold() {
        let c = contrast_cascade();
        assert!(c.classify(&contrast_image(255.0), 0, 0));
        assert!(!c.classify(&contrast_image(10.0), 0, 0));
    }

    #[test]
    fn eval_depth_counts_passed_stages() {
        let mut c = contrast_cascade();
        // Duplicate the stage three times.
        let s = c.stages[0].clone();
        c.stages.push(s.clone());
        c.stages.push(s);
        let pass = c.eval_window(&contrast_image(255.0), 0, 0);
        assert_eq!(pass.depth, 3);
        let fail = c.eval_window(&contrast_image(10.0), 0, 0);
        assert_eq!(fail.depth, 0);
        assert!(fail.score < pass.score);
    }

    #[test]
    fn truncated_evaluation_matches_truncated_cascade() {
        let mut c = contrast_cascade();
        let s = c.stages[0].clone();
        c.stages.push(s.clone());
        c.stages.push(s);
        let ii = contrast_image(255.0);
        let a = c.eval_window_truncated(&ii, 0, 0, 2);
        let b = c.truncated(2).eval_window(&ii, 0, 0);
        assert_eq!(a.depth, b.depth);
        assert!((a.score - b.score).abs() < 1e-6);
        assert_eq!(c.truncated(2).depth(), 2);
    }

    #[test]
    fn total_stumps_sums_stages() {
        let mut c = contrast_cascade();
        let s = c.stages[0].clone();
        c.stages.push(Stage { stumps: vec![s.stumps[0]; 4], threshold: 0.0 });
        assert_eq!(c.total_stumps(), 5);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn empty_cascade_accepts_everything() {
        let c = Cascade::new("empty", 24);
        assert!(c.classify(&contrast_image(0.0), 0, 0));
        assert_eq!(c.eval_window(&contrast_image(0.0), 0, 0).depth, 0);
    }
}
