//! Soft cascades (Bourdev & Brandt, CVPR 2005) — the paper's declared
//! future work ("further improve the accuracy of our feature set with
//! soft cascades", §VII).
//!
//! A soft cascade abandons stage boundaries: every stump contributes to a
//! single running sum, and after the `t`-th stump the window is rejected
//! if the sum falls below a per-position rejection threshold `r_t`. This
//! rejects most background windows after very few stumps (earlier than a
//! staged cascade can, since stages must complete before deciding) while
//! letting borderline windows survive longer.
//!
//! [`SoftCascade::calibrate`] uses the standard recipe: flatten a trained
//! staged cascade and set `r_t` to the `q`-quantile of positive-sample
//! running sums at position `t` (q = the per-stump miss budget).

use crate::cascade::{Cascade, CascadeEval};
use crate::stump::Stump;
use fd_imgproc::IntegralImage;

/// A monolithic cascade with per-stump rejection thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftCascade {
    pub name: String,
    pub window: u32,
    pub stumps: Vec<Stump>,
    /// `reject_after[t]`: reject when the running sum after stump `t`
    /// falls below this.
    pub reject_after: Vec<f32>,
}

impl SoftCascade {
    /// Flatten a staged cascade and calibrate rejection thresholds on
    /// positive-sample traces.
    ///
    /// `positives` are integral images of face windows; `quantile` is the
    /// fraction of positives allowed to be lost *in total* across the
    /// whole cascade (e.g. 0.05). Each position's threshold is the
    /// running-sum quantile `quantile / n_stumps`, i.e. the miss budget is
    /// spread uniformly across stump positions.
    pub fn calibrate(cascade: &Cascade, positives: &[IntegralImage], quantile: f64) -> Self {
        assert!(!positives.is_empty(), "calibration needs positive samples");
        assert!((0.0..1.0).contains(&quantile));
        let stumps: Vec<Stump> =
            cascade.stages.iter().flat_map(|s| s.stumps.iter().copied()).collect();
        assert!(!stumps.is_empty(), "empty cascade");

        // Running sums per positive per position.
        let mut traces = vec![vec![0.0f32; positives.len()]; stumps.len()];
        for (pi, ii) in positives.iter().enumerate() {
            let mut sum = 0.0f32;
            for (t, stump) in stumps.iter().enumerate() {
                sum += stump.eval(ii, 0, 0);
                traces[t][pi] = sum;
            }
        }

        let per_stump_q = quantile / stumps.len() as f64;
        let reject_after = traces
            .iter()
            .map(|t| {
                let mut v = t.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let idx = ((per_stump_q * v.len() as f64).floor() as usize).min(v.len() - 1);
                // Reject strictly below the chosen positive's sum: nudge
                // down so that positive itself survives.
                v[idx] - 1e-4
            })
            .collect();

        Self {
            name: format!("{}-soft", cascade.name),
            window: cascade.window,
            stumps,
            reject_after,
        }
    }

    /// Number of weak classifiers.
    pub fn len(&self) -> usize {
        self.stumps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.stumps.is_empty()
    }

    /// Evaluate one window; `depth` is the number of stumps evaluated
    /// before rejection (== `len()` for accepted windows), `score` the
    /// final running sum.
    pub fn eval_window(&self, ii: &IntegralImage, ox: usize, oy: usize) -> CascadeEval {
        let mut sum = 0.0f32;
        for (t, stump) in self.stumps.iter().enumerate() {
            sum += stump.eval(ii, ox, oy);
            if sum < self.reject_after[t] {
                return CascadeEval { depth: t as u32 + 1, score: sum };
            }
        }
        CascadeEval { depth: self.stumps.len() as u32, score: sum }
    }

    /// Whether the window survives the full cascade.
    pub fn classify(&self, ii: &IntegralImage, ox: usize, oy: usize) -> bool {
        self.eval_window(ii, ox, oy).depth == self.stumps.len() as u32
            && (self.stumps.is_empty()
                || self.eval_window(ii, ox, oy).score >= *self.reject_after.last().unwrap())
    }

    /// Mean stumps evaluated per window over an integral image — the
    /// early-exit efficiency metric soft cascades improve.
    pub fn mean_depth(&self, ii: &IntegralImage) -> f64 {
        let w = self.window as usize;
        if ii.width() < w || ii.height() < w {
            return 0.0;
        }
        let mut total = 0u64;
        let mut n = 0u64;
        for oy in 0..=ii.height() - w {
            for ox in 0..=ii.width() - w {
                total += self.eval_window(ii, ox, oy).depth as u64;
                n += 1;
            }
        }
        total as f64 / n as f64
    }
}

/// Mean stumps evaluated per window for a *staged* cascade (comparison
/// baseline for the soft-cascade ablation).
pub fn staged_mean_depth(cascade: &Cascade, ii: &IntegralImage) -> f64 {
    let w = cascade.window as usize;
    if ii.width() < w || ii.height() < w {
        return 0.0;
    }
    let mut total = 0u64;
    let mut n = 0u64;
    for oy in 0..=ii.height() - w {
        for ox in 0..=ii.width() - w {
            // Count stumps actually evaluated: all stumps of entered stages.
            let mut evaluated = 0u64;
            for stage in &cascade.stages {
                evaluated += stage.stumps.len() as u64;
                if stage.sum(ii, ox, oy) < stage.threshold {
                    break;
                }
            }
            total += evaluated;
            n += 1;
        }
    }
    total as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::Stage;
    use crate::feature::{FeatureKind, HaarFeature};
    use fd_imgproc::GrayImage;

    fn face_like(seed: u32) -> IntegralImage {
        // Left-dark/right-bright windows, the "face" class for the toy
        // EdgeH cascade below.
        let img = GrayImage::from_fn(24, 24, move |x, y| {
            let base = if x < 12 { 30.0 } else { 220.0 };
            base + ((x * 7 + y * 13 + seed as usize) % 17) as f32
        });
        IntegralImage::from_gray(&img)
    }

    fn background(seed: u32) -> IntegralImage {
        let img = GrayImage::from_fn(24, 24, move |x, y| {
            (((x as u32 * 31 + y as u32 * 57).wrapping_mul(seed | 1)) >> 24) as f32
        });
        IntegralImage::from_gray(&img)
    }

    fn staged() -> Cascade {
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let mut c = Cascade::new("toy", 24);
        for _ in 0..3 {
            c.stages.push(Stage {
                stumps: vec![
                    Stump { feature: f, threshold: 1000, left: -1.0, right: 1.0 },
                    Stump { feature: f, threshold: 2000, left: -0.5, right: 0.5 },
                ],
                threshold: 0.0,
            });
        }
        c
    }

    #[test]
    fn calibrated_soft_cascade_keeps_positives() {
        let positives: Vec<_> = (0..40).map(face_like).collect();
        let c = staged();
        let soft = SoftCascade::calibrate(&c, &positives, 0.05);
        assert_eq!(soft.len(), 6);
        let kept = positives.iter().filter(|ii| soft.classify(ii, 0, 0)).count();
        assert!(kept >= 38, "soft cascade lost too many positives: {kept}/40");
    }

    #[test]
    fn soft_cascade_rejects_backgrounds_early() {
        let positives: Vec<_> = (0..40).map(face_like).collect();
        let c = staged();
        let soft = SoftCascade::calibrate(&c, &positives, 0.05);
        let mut early = 0;
        for s in 0..30 {
            let ii = background(s);
            let e = soft.eval_window(&ii, 0, 0);
            if e.depth < soft.len() as u32 {
                early += 1;
            }
        }
        assert!(early >= 25, "only {early}/30 backgrounds rejected early");
    }

    #[test]
    fn soft_mean_depth_beats_staged_on_backgrounds() {
        // The headline soft-cascade property: fewer stumps per rejected
        // window, because rejection can happen mid-stage.
        let positives: Vec<_> = (0..40).map(face_like).collect();
        let c = staged();
        let soft = SoftCascade::calibrate(&c, &positives, 0.05);
        let img = GrayImage::from_fn(64, 48, |x, y| {
            (((x as u32 * 37 + y as u32 * 91).wrapping_mul(2654435761)) >> 24) as f32
        });
        let ii = IntegralImage::from_gray(&img);
        let soft_depth = soft.mean_depth(&ii);
        let staged_depth = staged_mean_depth(&c, &ii);
        assert!(
            soft_depth <= staged_depth,
            "soft {soft_depth:.2} vs staged {staged_depth:.2} stumps/window"
        );
    }

    #[test]
    fn calibration_quantile_trades_recall_for_speed() {
        let positives: Vec<_> = (0..60).map(face_like).collect();
        let c = staged();
        let tight = SoftCascade::calibrate(&c, &positives, 0.01);
        let loose = SoftCascade::calibrate(&c, &positives, 0.30);
        // A looser miss budget rejects earlier (higher thresholds).
        for (t, l) in tight.reject_after.iter().zip(&loose.reject_after) {
            assert!(l >= t, "loose thresholds must dominate: {l} < {t}");
        }
    }

    #[test]
    #[should_panic(expected = "positive samples")]
    fn calibration_requires_positives() {
        let _ = SoftCascade::calibrate(&staged(), &[], 0.05);
    }
}
