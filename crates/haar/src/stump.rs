//! Weak classifiers: regression stumps over Haar feature responses.
//!
//! GentleBoost fits a regression stump per round: the weak hypothesis is
//! `f(v) = left` when the response `v < threshold` and `right` otherwise,
//! with real-valued leaves (Friedman et al., 2000). Discrete AdaBoost's
//! `alpha * h(v)` is the special case `left = -alpha, right = +alpha` (or
//! swapped), so one representation serves both trainers.

use crate::feature::HaarFeature;
use fd_imgproc::IntegralImage;

/// A decision stump over one Haar feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stump {
    pub feature: HaarFeature,
    /// Split point on the feature response.
    pub threshold: i32,
    /// Contribution when `response < threshold`.
    pub left: f32,
    /// Contribution when `response >= threshold`.
    pub right: f32,
}

impl Stump {
    /// Evaluate on a precomputed feature response.
    #[inline]
    pub fn eval_response(&self, response: i32) -> f32 {
        if response < self.threshold {
            self.left
        } else {
            self.right
        }
    }

    /// Evaluate on a window of an integral image.
    #[inline]
    pub fn eval(&self, ii: &IntegralImage, ox: usize, oy: usize) -> f32 {
        self.eval_response(self.feature.eval(ii, ox, oy))
    }

    /// The discrete-AdaBoost form: vote `polarity * sign(v - threshold)`
    /// scaled by `alpha`. `polarity = +1` votes `right = +alpha`.
    pub fn discrete(feature: HaarFeature, threshold: i32, polarity: i8, alpha: f32) -> Self {
        let (left, right) = if polarity >= 0 { (-alpha, alpha) } else { (alpha, -alpha) };
        Self { feature, threshold, left, right }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeatureKind;

    fn any_feature() -> HaarFeature {
        HaarFeature::from_params(FeatureKind::EdgeH, 2, 2, 4, 6)
    }

    #[test]
    fn eval_response_splits_at_threshold() {
        let s = Stump { feature: any_feature(), threshold: 10, left: -0.5, right: 0.8 };
        assert_eq!(s.eval_response(9), -0.5);
        assert_eq!(s.eval_response(10), 0.8);
        assert_eq!(s.eval_response(11), 0.8);
    }

    #[test]
    fn discrete_form_maps_polarity() {
        let pos = Stump::discrete(any_feature(), 0, 1, 2.0);
        assert_eq!((pos.left, pos.right), (-2.0, 2.0));
        let neg = Stump::discrete(any_feature(), 0, -1, 2.0);
        assert_eq!((neg.left, neg.right), (2.0, -2.0));
    }

    #[test]
    fn eval_uses_feature_response() {
        use fd_imgproc::GrayImage;
        // Strong horizontal contrast -> large positive EdgeH response.
        let img = GrayImage::from_fn(24, 24, |x, _| if x < 12 { 0.0 } else { 255.0 });
        let ii = IntegralImage::from_gray(&img);
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        let s = Stump { feature: f, threshold: 100, left: -1.0, right: 1.0 };
        assert_eq!(s.eval(&ii, 0, 0), 1.0);
    }
}
