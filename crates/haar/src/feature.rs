//! Haar-like features over integral images.
//!
//! A feature is a small set of weighted rectangles inside the detection
//! window; its response is the weighted sum of rectangle pixel sums, each
//! computed with 4 integral-image lookups. The paper's accounting
//! (§III-C) charges 9 memory accesses per rectangle: 4 integral values +
//! 5 attribute words (x, y, w, h, weight); [`HaarFeature::mem_accesses`]
//! reproduces that number and the GPU kernel meters it.

use fd_imgproc::IntegralImage;

/// The feature families of the paper's Table I. Horizontal/vertical
/// variants exist for edge and line features; the table groups them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeatureKind {
    /// Two cells side by side (total 2w x h): right minus left.
    EdgeH,
    /// Two cells stacked (w x 2h): bottom minus top.
    EdgeV,
    /// Three cells in a row (3w x h): sides minus twice the middle.
    LineH,
    /// Three cells in a column (w x 3h).
    LineV,
    /// A w x h center against its 3w x 3h surround.
    CenterSurround,
    /// Four-square checkerboard (2w x 2h): main diagonal minus anti.
    Diagonal,
}

impl FeatureKind {
    /// All kinds, enumeration order.
    pub const ALL: [FeatureKind; 6] = [
        FeatureKind::EdgeH,
        FeatureKind::EdgeV,
        FeatureKind::LineH,
        FeatureKind::LineV,
        FeatureKind::CenterSurround,
        FeatureKind::Diagonal,
    ];

    /// Table I row this kind belongs to (0 edge, 1 line, 2 center, 3 diag).
    pub fn table1_row(&self) -> usize {
        match self {
            FeatureKind::EdgeH | FeatureKind::EdgeV => 0,
            FeatureKind::LineH | FeatureKind::LineV => 1,
            FeatureKind::CenterSurround => 2,
            FeatureKind::Diagonal => 3,
        }
    }

    /// Stable small integer id (used by the packed encoding).
    pub fn id(&self) -> u8 {
        match self {
            FeatureKind::EdgeH => 0,
            FeatureKind::EdgeV => 1,
            FeatureKind::LineH => 2,
            FeatureKind::LineV => 3,
            FeatureKind::CenterSurround => 4,
            FeatureKind::Diagonal => 5,
        }
    }

    /// Inverse of [`FeatureKind::id`].
    pub fn from_id(id: u8) -> Option<FeatureKind> {
        FeatureKind::ALL.get(id as usize).copied()
    }

    /// Bounding box (width, height) of a feature of this kind with cell
    /// size `(w, h)`, computed without constructing the feature. Untrusted
    /// loaders check `x + width <= window` with *this* before calling
    /// [`HaarFeature::from_params`], whose rectangle layout does `u8`
    /// coordinate arithmetic that would overflow on absurd geometry.
    pub fn extent_of(&self, w: u8, h: u8) -> (u32, u32) {
        let (w, h) = (w as u32, h as u32);
        match self {
            FeatureKind::EdgeH => (2 * w, h),
            FeatureKind::EdgeV => (w, 2 * h),
            FeatureKind::LineH => (3 * w, h),
            FeatureKind::LineV => (w, 3 * h),
            FeatureKind::CenterSurround => (3 * w, 3 * h),
            FeatureKind::Diagonal => (2 * w, 2 * h),
        }
    }
}

/// One weighted rectangle of a feature, in window coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaarRect {
    pub x: u8,
    pub y: u8,
    pub w: u8,
    pub h: u8,
    pub weight: i8,
}

/// A Haar-like feature: up to 4 weighted rectangles plus its generating
/// parameters `(kind, x, y, w, h)` where `(w, h)` is the *cell* size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaarFeature {
    pub kind: FeatureKind,
    /// Feature origin within the window.
    pub x: u8,
    /// Feature origin within the window.
    pub y: u8,
    /// Cell width (the feature spans 2w/3w/... depending on kind).
    pub w: u8,
    /// Cell height.
    pub h: u8,
    rects: [HaarRect; 4],
    nrects: u8,
}

impl HaarFeature {
    /// Build the canonical rectangle layout for `(kind, x, y, w, h)`.
    ///
    /// The weights are zero-DC (they cancel over a constant image), so the
    /// response measures contrast only.
    pub fn from_params(kind: FeatureKind, x: u8, y: u8, w: u8, h: u8) -> Self {
        let r = |rx: u8, ry: u8, rw: u8, rh: u8, wt: i8| HaarRect {
            x: rx,
            y: ry,
            w: rw,
            h: rh,
            weight: wt,
        };
        let zero = r(0, 0, 0, 0, 0);
        let (rects, nrects) = match kind {
            FeatureKind::EdgeH => ([r(x, y, w, h, -1), r(x + w, y, w, h, 1), zero, zero], 2),
            FeatureKind::EdgeV => ([r(x, y, w, h, -1), r(x, y + h, w, h, 1), zero, zero], 2),
            FeatureKind::LineH => (
                [r(x, y, w, h, 1), r(x + w, y, w, h, -2), r(x + 2 * w, y, w, h, 1), zero],
                3,
            ),
            FeatureKind::LineV => (
                [r(x, y, w, h, 1), r(x, y + h, w, h, -2), r(x, y + 2 * h, w, h, 1), zero],
                3,
            ),
            FeatureKind::CenterSurround => {
                ([r(x, y, 3 * w, 3 * h, -1), r(x + w, y + h, w, h, 9), zero, zero], 2)
            }
            FeatureKind::Diagonal => (
                [
                    r(x, y, w, h, 1),
                    r(x + w, y, w, h, -1),
                    r(x, y + h, w, h, -1),
                    r(x + w, y + h, w, h, 1),
                ],
                4,
            ),
        };
        Self { kind, x, y, w, h, rects, nrects }
    }

    /// The active rectangles.
    #[inline]
    pub fn rects(&self) -> &[HaarRect] {
        &self.rects[..self.nrects as usize]
    }

    /// Bounding box (width, height) of the whole feature.
    pub fn extent(&self) -> (u32, u32) {
        match self.kind {
            FeatureKind::EdgeH => (2 * self.w as u32, self.h as u32),
            FeatureKind::EdgeV => (self.w as u32, 2 * self.h as u32),
            FeatureKind::LineH => (3 * self.w as u32, self.h as u32),
            FeatureKind::LineV => (self.w as u32, 3 * self.h as u32),
            FeatureKind::CenterSurround => (3 * self.w as u32, 3 * self.h as u32),
            FeatureKind::Diagonal => (2 * self.w as u32, 2 * self.h as u32),
        }
    }

    /// Whether the feature fits inside a `window x window` box.
    pub fn fits(&self, window: u32) -> bool {
        let (fw, fh) = self.extent();
        self.x as u32 + fw <= window && self.y as u32 + fh <= window
    }

    /// Response for the window whose top-left corner is `(ox, oy)` in the
    /// integral image.
    #[inline]
    pub fn eval(&self, ii: &IntegralImage, ox: usize, oy: usize) -> i32 {
        let mut acc = 0i64;
        for r in self.rects() {
            let s = ii.rect_sum(
                ox + r.x as usize,
                oy + r.y as usize,
                r.w as usize,
                r.h as usize,
            );
            acc += r.weight as i64 * s;
        }
        acc as i32
    }

    /// Memory accesses the paper charges for evaluating this feature
    /// (9 per rectangle: 4 integral reads + 5 attribute reads). A 2-rect
    /// feature costs 18 and a 3-rect feature 27, matching §III-C.
    pub fn mem_accesses(&self) -> u32 {
        self.nrects as u32 * 9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fd_imgproc::GrayImage;

    fn ii_const(v: u8, size: usize) -> IntegralImage {
        IntegralImage::from_u8(size, size, &vec![v; size * size])
    }

    #[test]
    fn all_kinds_are_zero_dc() {
        let ii = ii_const(100, 24);
        for kind in FeatureKind::ALL {
            let f = HaarFeature::from_params(kind, 1, 1, 3, 3);
            assert!(f.fits(24));
            assert_eq!(f.eval(&ii, 0, 0), 0, "{kind:?} must cancel on flat input");
        }
    }

    #[test]
    fn edge_h_measures_horizontal_contrast() {
        // Left half 0, right half 200.
        let img = GrayImage::from_fn(24, 24, |x, _| if x < 12 { 0.0 } else { 200.0 });
        let ii = IntegralImage::from_gray(&img);
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        // Left cell covers x 6..12 (all 0), right cell x 12..18 (all 200).
        assert_eq!(f.eval(&ii, 0, 0), 200 * 6 * 8);
        // The mirrored contrast flips the sign.
        let img2 = GrayImage::from_fn(24, 24, |x, _| if x < 12 { 200.0 } else { 0.0 });
        let ii2 = IntegralImage::from_gray(&img2);
        assert_eq!(f.eval(&ii2, 0, 0), -200 * 6 * 8);
    }

    #[test]
    fn line_h_detects_a_dark_band() {
        // Dark vertical band in the middle third of the feature.
        let img = GrayImage::from_fn(24, 24, |x, _| if (8..12).contains(&x) { 0.0 } else { 150.0 });
        let ii = IntegralImage::from_gray(&img);
        let f = HaarFeature::from_params(FeatureKind::LineH, 4, 4, 4, 6);
        // sides at 150, middle 0: response = 2*150*area_cell.
        assert_eq!(f.eval(&ii, 0, 0), 2 * 150 * 4 * 6);
    }

    #[test]
    fn center_surround_detects_a_bright_spot() {
        let img = GrayImage::from_fn(24, 24, |x, y| {
            if (9..12).contains(&x) && (9..12).contains(&y) {
                200.0
            } else {
                0.0
            }
        });
        let ii = IntegralImage::from_gray(&img);
        let f = HaarFeature::from_params(FeatureKind::CenterSurround, 6, 6, 3, 3);
        // -1 * 200*9 (whole) + 9 * 200*9 (center) = 200*9*8.
        assert_eq!(f.eval(&ii, 0, 0), 200 * 9 * 8);
    }

    #[test]
    fn diagonal_detects_checker_phase() {
        let img = GrayImage::from_fn(24, 24, |x, y| {
            if (x < 12) == (y < 12) {
                100.0
            } else {
                0.0
            }
        });
        let ii = IntegralImage::from_gray(&img);
        let f = HaarFeature::from_params(FeatureKind::Diagonal, 0, 0, 12, 12);
        // TL and BR bright: +100*144 +100*144.
        assert_eq!(f.eval(&ii, 0, 0), 2 * 100 * 144);
    }

    #[test]
    fn eval_respects_window_offset() {
        let img = GrayImage::from_fn(48, 48, |x, _| if x >= 36 { 240.0 } else { 0.0 });
        let ii = IntegralImage::from_gray(&img);
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        // At offset (24, 10) the feature's right cell covers x 36..42.
        assert_eq!(f.eval(&ii, 24, 10), 240 * 6 * 8);
        assert_eq!(f.eval(&ii, 0, 0), 0);
    }

    #[test]
    fn mem_access_counts_match_paper() {
        let two = HaarFeature::from_params(FeatureKind::EdgeH, 0, 0, 2, 2);
        let three = HaarFeature::from_params(FeatureKind::LineV, 0, 0, 2, 2);
        assert_eq!(two.mem_accesses(), 18);
        assert_eq!(three.mem_accesses(), 27);
    }

    #[test]
    fn extent_and_fits() {
        let f = HaarFeature::from_params(FeatureKind::CenterSurround, 6, 6, 6, 6);
        assert_eq!(f.extent(), (18, 18));
        assert!(f.fits(24));
        assert!(!f.fits(23));
        let g = HaarFeature::from_params(FeatureKind::LineH, 10, 0, 5, 4);
        assert_eq!(g.extent(), (15, 4));
        assert!(!g.fits(24));
    }

    #[test]
    fn kind_ids_roundtrip() {
        for kind in FeatureKind::ALL {
            assert_eq!(FeatureKind::from_id(kind.id()), Some(kind));
        }
        assert_eq!(FeatureKind::from_id(6), None);
    }
}
