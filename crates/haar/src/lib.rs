//! # fd-haar — Haar-like features and boosted cascades
//!
//! The feature machinery of the reproduction:
//!
//! * [`feature`] — the four Haar-like feature families of the paper's
//!   Table I (edge, line, center-surround, diagonal), evaluated on integral
//!   images with the exact rectangle-lookup counts the paper reports
//!   (9 memory accesses per rectangle);
//! * [`enumerate`] — exhaustive enumeration over the 24x24 training window.
//!   [`enumerate::EnumerationRule::Icpp2012`] replicates the paper's loop
//!   bounds and reproduces Table I exactly: 55 660 edge, 31 878 line,
//!   3 969 center-surround and 12 100 diagonal combinations;
//! * [`stump`] — regression stumps (GentleBoost weak classifiers; discrete
//!   AdaBoost stumps are the `+/- alpha` special case);
//! * [`cascade`] — attentional cascades organized in stages with early
//!   rejection, the structure whose evaluation the GPU kernel parallelizes;
//! * [`encode`] — the paper's §III-C constant-memory compression: each
//!   stump's geometry, threshold and leaf values re-encoded into a few
//!   32-bit words holding packed 16-bit/5-bit fields;
//! * [`io`] — a line-oriented text format for saving/loading cascades.

pub mod cascade;
pub mod encode;
pub mod enumerate;
pub mod feature;
pub mod io;
pub mod soft;
pub mod stump;

pub use cascade::{Cascade, CascadeError, CascadeEval, Stage};
pub use encode::{decode_stump, encode_stump, PackedStump};
pub use enumerate::{enumerate_features, enumerate_kind, table1_counts, EnumerationRule};
pub use feature::{FeatureKind, HaarFeature, HaarRect};
pub use soft::SoftCascade;
pub use stump::Stump;

/// The training/detection window side used throughout the paper.
pub const WINDOW: u32 = 24;
