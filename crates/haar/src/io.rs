//! Plain-text cascade serialization.
//!
//! A simple line-oriented format (one token stream per line) keeps the
//! workspace dependency-free while making trained cascades diffable and
//! hand-inspectable:
//!
//! ```text
//! cascade v1
//! name ours-gentle
//! window 24
//! stages 25
//! stage 0 0.125 3
//! stump 0 6 4 6 8 1234 -0.5 0.5
//! ...
//! ```

use std::fmt::Write as _;
use std::path::Path;

use crate::cascade::{Cascade, Stage};
use crate::feature::{FeatureKind, HaarFeature};
use crate::stump::Stump;

/// Serialization/parsing errors.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Render a cascade to the text format.
pub fn to_text(c: &Cascade) -> String {
    let mut out = String::new();
    out.push_str("cascade v1\n");
    let _ = writeln!(out, "name {}", c.name);
    let _ = writeln!(out, "window {}", c.window);
    let _ = writeln!(out, "stages {}", c.stages.len());
    for (i, st) in c.stages.iter().enumerate() {
        let _ = writeln!(out, "stage {} {} {}", i, st.threshold, st.stumps.len());
        for s in &st.stumps {
            let f = &s.feature;
            let _ = writeln!(
                out,
                "stump {} {} {} {} {} {} {} {}",
                f.kind.id(),
                f.x,
                f.y,
                f.w,
                f.h,
                s.threshold,
                s.left,
                s.right
            );
        }
    }
    out
}

/// Parse the text format back into a cascade.
pub fn from_text(text: &str) -> Result<Cascade, ParseError> {
    let err = |line: usize, m: &str| ParseError { line, message: m.to_string() };
    let mut lines = text.lines().enumerate();

    let mut next_line = |expect: &str| -> Result<(usize, Vec<String>), ParseError> {
        for (i, raw) in lines.by_ref() {
            let t = raw.trim();
            if t.is_empty() || t.starts_with('#') {
                continue;
            }
            let toks: Vec<String> = t.split_whitespace().map(str::to_string).collect();
            if !expect.is_empty() && toks[0] != expect {
                return Err(err(i + 1, &format!("expected '{expect}', found '{}'", toks[0])));
            }
            return Ok((i + 1, toks));
        }
        Err(err(0, &format!("unexpected end of input (expected '{expect}')")))
    };

    let (l, head) = next_line("cascade")?;
    if head.get(1).map(String::as_str) != Some("v1") {
        return Err(err(l, "unsupported cascade version"));
    }
    let (_, name_toks) = next_line("name")?;
    let name = name_toks[1..].join(" ");
    let (l, win_toks) = next_line("window")?;
    let window: u32 =
        win_toks.get(1).and_then(|t| t.parse().ok()).ok_or_else(|| err(l, "bad window"))?;
    let (l, st_toks) = next_line("stages")?;
    let n_stages: usize =
        st_toks.get(1).and_then(|t| t.parse().ok()).ok_or_else(|| err(l, "bad stage count"))?;

    let mut cascade = Cascade::new(name, window);
    for k in 0..n_stages {
        let (l, toks) = next_line("stage")?;
        if toks.len() != 4 {
            return Err(err(l, "stage line needs: stage <idx> <threshold> <nstumps>"));
        }
        let idx: usize = toks[1].parse().map_err(|_| err(l, "bad stage index"))?;
        if idx != k {
            return Err(err(l, &format!("stage index {idx}, expected {k}")));
        }
        let threshold: f32 = toks[2].parse().map_err(|_| err(l, "bad stage threshold"))?;
        if !threshold.is_finite() {
            return Err(err(l, "non-finite stage threshold"));
        }
        let n_stumps: usize = toks[3].parse().map_err(|_| err(l, "bad stump count"))?;
        let mut stumps = Vec::with_capacity(n_stumps);
        for _ in 0..n_stumps {
            let (l, toks) = next_line("stump")?;
            if toks.len() != 9 {
                return Err(err(l, "stump line needs 8 fields"));
            }
            let kind_id: u8 = toks[1].parse().map_err(|_| err(l, "bad kind"))?;
            let kind =
                FeatureKind::from_id(kind_id).ok_or_else(|| err(l, "unknown feature kind"))?;
            let p: Result<Vec<u8>, _> = toks[2..6].iter().map(|t| t.parse()).collect();
            let p = p.map_err(|_| err(l, "bad geometry"))?;
            let threshold: i32 = toks[6].parse().map_err(|_| err(l, "bad threshold"))?;
            let left: f32 = toks[7].parse().map_err(|_| err(l, "bad left leaf"))?;
            let right: f32 = toks[8].parse().map_err(|_| err(l, "bad right leaf"))?;
            if !(left.is_finite() && right.is_finite()) {
                return Err(err(l, "non-finite leaf value"));
            }
            if p[2] == 0 || p[3] == 0 {
                return Err(err(l, "zero-area feature"));
            }
            // Bounds-check the extent *before* constructing the feature:
            // `from_params` lays out rectangles with u8 coordinate
            // arithmetic, which overflows on absurd (but parseable)
            // geometry like x=200 w=200.
            let (fw, fh) = kind.extent_of(p[2], p[3]);
            if p[0] as u32 + fw > window || p[1] as u32 + fh > window {
                return Err(err(l, "feature escapes the window"));
            }
            let feature = HaarFeature::from_params(kind, p[0], p[1], p[2], p[3]);
            if !feature.fits(window) {
                return Err(err(l, "feature escapes the window"));
            }
            stumps.push(Stump { feature, threshold, left, right });
        }
        cascade.stages.push(Stage { stumps, threshold });
    }
    // Parsing checked token shapes line by line; the semantic pass rejects
    // whatever a well-formed file can still get wrong (empty cascade,
    // absurd thresholds, unsatisfiable stages) before the cascade can
    // reach any evaluation path.
    cascade
        .validate()
        .map_err(|e| ParseError { line: 0, message: format!("cascade validation: {e}") })?;
    Ok(cascade)
}

/// Save to a file.
pub fn save(c: &Cascade, path: impl AsRef<Path>) -> std::io::Result<()> {
    std::fs::write(path, to_text(c))
}

/// Load from a file.
pub fn load(path: impl AsRef<Path>) -> std::io::Result<Cascade> {
    let text = std::fs::read_to_string(path)?;
    from_text(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cascade() -> Cascade {
        let mut c = Cascade::new("unit test", 24);
        let f = HaarFeature::from_params(FeatureKind::EdgeH, 6, 4, 6, 8);
        c.stages.push(Stage {
            stumps: vec![Stump { feature: f, threshold: 1000, left: -0.5, right: 0.5 }],
            threshold: 0.25,
        });
        let g = HaarFeature::from_params(FeatureKind::CenterSurround, 3, 3, 4, 4);
        c.stages.push(Stage {
            stumps: vec![
                Stump { feature: g, threshold: -42, left: 0.125, right: -0.125 },
                Stump { feature: f, threshold: 7, left: 1.0, right: -1.0 },
            ],
            threshold: -0.75,
        });
        c
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let c = sample_cascade();
        let back = from_text(&to_text(&c)).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn file_roundtrip() {
        let c = sample_cascade();
        let dir = std::env::temp_dir().join("fd_haar_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.cascade");
        save(&c, &path).unwrap();
        assert_eq!(load(&path).unwrap(), c);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("# trained cascade\n\n{}", to_text(&sample_cascade()));
        assert!(from_text(&text).is_ok());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let mut text = to_text(&sample_cascade());
        text = text.replace("stump 0 6 4 6 8 1000", "stump 9 6 4 6 8 1000");
        let e = from_text(&text).unwrap_err();
        assert!(e.message.contains("unknown feature kind"));
        assert!(e.line > 0);
    }

    #[test]
    fn rejects_out_of_window_features() {
        let mut text = to_text(&sample_cascade());
        // Move the EdgeH feature so 2w overflows the window.
        text = text.replace("stump 0 6 4 6 8", "stump 0 20 4 6 8");
        assert!(from_text(&text).unwrap_err().message.contains("escapes"));
    }

    #[test]
    fn rejects_wrong_version() {
        assert!(from_text("cascade v2\nname x\nwindow 24\nstages 0\n").is_err());
    }
}
