//! Compressed constant-memory encoding of cascades (paper §III-C).
//!
//! "Since all bits of the thresholds, coordinates, dimensions and weight
//! values are not significant, we propose reencoding and combining them
//! into two 16-bit words using simple bitwise operations and masks."
//!
//! Here each stump is packed into three 32-bit words (six 16-bit
//! half-words):
//!
//! * word 0 — geometry: `x(5) | y(5) | w(5) | h(5) | kind(3)`; the
//!   rectangle layout is reconstructed from these generator parameters, so
//!   per-rectangle coordinates and weights need not be stored at all;
//! * word 1 — split threshold quantized to multiples of [`THR_STEP`]
//!   (low 16 bits) and the `left` leaf in fixed point 1/[`LEAF_SCALE`]
//!   (high 16 bits);
//! * word 2 — the `right` leaf (low 16 bits; high bits reserved).
//!
//! At 12 bytes per stump the paper's two cascades (1446 and 2913 weak
//! classifiers) occupy ~17 KiB and ~35 KiB: both fit the 64 KiB constant
//! bank, which is what makes the broadcast-from-constant-memory kernel
//! design possible. Quantization is part of the model: a
//! [`quantize_cascade`]d cascade round-trips the encoding bit-exactly, so
//! the CPU reference and the GPU kernel agree bit-for-bit.

use crate::cascade::{Cascade, Stage};
use crate::feature::{FeatureKind, HaarFeature};
use crate::stump::Stump;

/// Feature-response thresholds are stored in units of 32 (responses for a
/// 24-px window span roughly +/-225k; 32-unit steps fit i16 with headroom).
pub const THR_STEP: i32 = 32;
/// Leaf values and stage thresholds use fixed point with this scale.
pub const LEAF_SCALE: f32 = 1024.0;

/// A stump packed into three 32-bit constant-memory words.
pub type PackedStump = [u32; 3];

/// Words of header per encoded cascade (magic, window, n_stages).
pub const HEADER_WORDS: usize = 3;
/// Words per encoded stage header (n_stumps, stage threshold).
pub const STAGE_HEADER_WORDS: usize = 2;
/// Words per encoded stump.
pub const STUMP_WORDS: usize = 3;

const MAGIC: u32 = 0x4643_4144; // "FCAD"

#[inline]
fn q16(v: i32) -> u32 {
    debug_assert!((i16::MIN as i32..=i16::MAX as i32).contains(&v), "i16 overflow: {v}");
    (v as i16 as u16) as u32
}

#[inline]
fn unq16(w: u32) -> i32 {
    (w & 0xFFFF) as u16 as i16 as i32
}

/// Quantize a leaf/threshold float to the fixed-point grid.
#[inline]
pub fn quantize_leaf(v: f32) -> f32 {
    (v * LEAF_SCALE).round().clamp(i16::MIN as f32, i16::MAX as f32) / LEAF_SCALE
}

/// Quantize a feature-response threshold to the [`THR_STEP`] grid.
#[inline]
pub fn quantize_threshold(t: i32) -> i32 {
    let q = (t as f64 / THR_STEP as f64).round() as i32;
    q.clamp(i16::MIN as i32, i16::MAX as i32) * THR_STEP
}

/// Pack one stump.
pub fn encode_stump(s: &Stump) -> PackedStump {
    let f = &s.feature;
    assert!(f.x < 32 && f.y < 32 && f.w < 32 && f.h < 32, "geometry exceeds 5-bit fields");
    let geom = (f.x as u32)
        | (f.y as u32) << 5
        | (f.w as u32) << 10
        | (f.h as u32) << 15
        | (f.kind.id() as u32) << 20;
    let thr_q = (s.threshold as f64 / THR_STEP as f64).round() as i32;
    let left_q = (s.left * LEAF_SCALE).round() as i32;
    let right_q = (s.right * LEAF_SCALE).round() as i32;
    [geom, q16(thr_q) | q16(left_q) << 16, q16(right_q)]
}

/// Unpack one stump (values land on the quantization grid).
pub fn decode_stump(p: &PackedStump) -> Stump {
    let geom = p[0];
    let x = (geom & 0x1F) as u8;
    let y = (geom >> 5 & 0x1F) as u8;
    let w = (geom >> 10 & 0x1F) as u8;
    let h = (geom >> 15 & 0x1F) as u8;
    let kind = FeatureKind::from_id((geom >> 20 & 0x7) as u8).expect("bad feature kind id");
    let threshold = unq16(p[1]) * THR_STEP;
    let left = unq16(p[1] >> 16) as f32 / LEAF_SCALE;
    let right = unq16(p[2]) as f32 / LEAF_SCALE;
    Stump { feature: HaarFeature::from_params(kind, x, y, w, h), threshold, left, right }
}

/// Encode a whole cascade into constant-memory words.
pub fn encode_cascade(c: &Cascade) -> Vec<u32> {
    let mut out = Vec::with_capacity(
        HEADER_WORDS
            + c.stages.len() * STAGE_HEADER_WORDS
            + c.total_stumps() * STUMP_WORDS,
    );
    out.push(MAGIC);
    out.push(c.window);
    out.push(c.stages.len() as u32);
    for st in &c.stages {
        out.push(st.stumps.len() as u32);
        out.push(((st.threshold * LEAF_SCALE).round() as i32) as u32);
        for s in &st.stumps {
            out.extend_from_slice(&encode_stump(s));
        }
    }
    out
}

/// Decode constant-memory words back into a cascade.
pub fn decode_cascade(words: &[u32], name: impl Into<String>) -> Cascade {
    assert!(words.len() >= HEADER_WORDS, "truncated cascade blob");
    assert_eq!(words[0], MAGIC, "bad cascade magic");
    let window = words[1];
    let n_stages = words[2] as usize;
    let mut pos = HEADER_WORDS;
    let mut c = Cascade::new(name, window);
    for _ in 0..n_stages {
        assert!(pos + STAGE_HEADER_WORDS <= words.len(), "truncated stage header");
        let n_stumps = words[pos] as usize;
        let threshold = words[pos + 1] as i32 as f32 / LEAF_SCALE;
        pos += STAGE_HEADER_WORDS;
        let mut stumps = Vec::with_capacity(n_stumps);
        for _ in 0..n_stumps {
            assert!(pos + STUMP_WORDS <= words.len(), "truncated stump");
            let p: PackedStump = [words[pos], words[pos + 1], words[pos + 2]];
            stumps.push(decode_stump(&p));
            pos += STUMP_WORDS;
        }
        c.stages.push(Stage { stumps, threshold });
    }
    c
}

/// Snap every threshold and leaf of `c` onto the encoding grid. A
/// quantized cascade satisfies `decode(encode(q)) == q` bit-exactly.
pub fn quantize_cascade(c: &Cascade) -> Cascade {
    let mut out = c.clone();
    for st in &mut out.stages {
        st.threshold = quantize_leaf(st.threshold);
        for s in &mut st.stumps {
            s.threshold = quantize_threshold(s.threshold);
            s.left = quantize_leaf(s.left);
            s.right = quantize_leaf(s.right);
        }
    }
    out
}

/// Bytes used by the packed representation of a cascade.
pub fn packed_bytes(c: &Cascade) -> usize {
    4 * (HEADER_WORDS + c.stages.len() * STAGE_HEADER_WORDS + c.total_stumps() * STUMP_WORDS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stump(kind: FeatureKind, thr: i32, l: f32, r: f32) -> Stump {
        Stump {
            feature: HaarFeature::from_params(kind, 3, 7, 5, 4),
            threshold: thr,
            left: l,
            right: r,
        }
    }

    #[test]
    fn stump_roundtrip_on_grid_is_exact() {
        let s = stump(FeatureKind::LineV, 4 * THR_STEP, -0.5, 0.25);
        let back = decode_stump(&encode_stump(&s));
        assert_eq!(back, s);
    }

    #[test]
    fn quantization_error_is_bounded() {
        let s = stump(FeatureKind::Diagonal, 12_345, -0.123_456, 0.987_654);
        let back = decode_stump(&encode_stump(&s));
        assert!((back.threshold - s.threshold).abs() <= THR_STEP / 2);
        assert!((back.left - s.left).abs() <= 0.5 / LEAF_SCALE + 1e-6);
        assert!((back.right - s.right).abs() <= 0.5 / LEAF_SCALE + 1e-6);
        assert_eq!(back.feature, s.feature);
    }

    #[test]
    fn geometry_packs_all_kinds_and_positions() {
        for kind in FeatureKind::ALL {
            let s = stump(kind, 0, 0.0, 0.0);
            assert_eq!(decode_stump(&encode_stump(&s)).feature.kind, kind);
        }
        let s = Stump {
            feature: HaarFeature::from_params(FeatureKind::EdgeH, 21, 20, 1, 1),
            threshold: 0,
            left: 0.0,
            right: 0.0,
        };
        assert_eq!(decode_stump(&encode_stump(&s)).feature, s.feature);
    }

    #[test]
    fn negative_thresholds_survive() {
        let s = stump(FeatureKind::EdgeV, -20_000, 1.0, -1.0);
        let back = decode_stump(&encode_stump(&s));
        assert!((back.threshold - quantize_threshold(-20_000)).abs() == 0);
        assert!(back.threshold < 0);
    }

    #[test]
    fn cascade_roundtrip_after_quantization() {
        let mut c = Cascade::new("t", 24);
        c.stages.push(Stage {
            stumps: vec![
                stump(FeatureKind::EdgeH, 777, -0.3, 0.7),
                stump(FeatureKind::CenterSurround, -31, 0.2, -0.9),
            ],
            threshold: 0.123,
        });
        c.stages.push(Stage {
            stumps: vec![stump(FeatureKind::LineH, 0, 1.5, -1.5)],
            threshold: -0.5,
        });
        let q = quantize_cascade(&c);
        let back = decode_cascade(&encode_cascade(&q), "t");
        assert_eq!(back.stages, q.stages);
        assert_eq!(back.window, 24);
    }

    #[test]
    fn packed_size_fits_constant_memory_for_paper_cascades() {
        // 1446 stumps over 25 stages.
        let mut ours = Cascade::new("ours", 24);
        for i in 0..25 {
            let n = 1446 / 25 + usize::from(i < 1446 % 25);
            ours.stages.push(Stage {
                stumps: vec![stump(FeatureKind::EdgeH, 0, 0.1, -0.1); n],
                threshold: 0.0,
            });
        }
        assert_eq!(ours.total_stumps(), 1446);
        assert!(packed_bytes(&ours) < 20 * 1024);
        // 2913 stumps over 25 stages: still inside 64 KiB.
        let mut cv = Cascade::new("opencv-like", 24);
        for i in 0..25 {
            let n = 2913 / 25 + usize::from(i < 2913 % 25);
            cv.stages.push(Stage {
                stumps: vec![stump(FeatureKind::EdgeH, 0, 0.1, -0.1); n],
                threshold: 0.0,
            });
        }
        assert!(packed_bytes(&cv) < 40 * 1024);
    }

    #[test]
    #[should_panic(expected = "bad cascade magic")]
    fn decode_rejects_garbage() {
        decode_cascade(&[1, 2, 3], "x");
    }
}
