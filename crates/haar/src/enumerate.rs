//! Exhaustive feature enumeration over the detection window.
//!
//! Two rules are provided:
//!
//! * [`EnumerationRule::Icpp2012`] replicates the bounds of the paper's
//!   training code, reverse-engineered from Table I. Denoting the cell
//!   size `(w, h)` and the feature origin `(x, y)` in a 24-pixel window:
//!   every *replicated* dimension (the one spanning 2 or 3 cells) requires
//!   `cell >= 2` and `origin + span < 24` (strict), while a *plain*
//!   dimension requires `size >= 1` and `origin + size < 23` (strict).
//!   These asymmetric, strict bounds are exactly what reproduces
//!   Table I: edge 55 660, line 31 878, center-surround 3 969, diagonal
//!   12 100 (103 607 total).
//! * [`EnumerationRule::Exhaustive`] is the textbook enumeration (all
//!   sizes >= 1, features may touch the window border), provided for
//!   ablations.

use crate::feature::{FeatureKind, HaarFeature};

/// Which loop bounds to enumerate with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnumerationRule {
    /// The paper's bounds (reproduces Table I exactly at window = 24).
    Icpp2012,
    /// Textbook bounds: everything that fits.
    Exhaustive,
}

/// Bounds for one dimension of the enumeration.
#[derive(Clone, Copy)]
struct DimRule {
    min_cell: u8,
    /// Exclusive upper bound on `origin + span`.
    limit: u8,
}

fn rules(rule: EnumerationRule, window: u32, replicated: bool) -> DimRule {
    let w = window as u8;
    match (rule, replicated) {
        // Replicated dimension: cell >= 2, origin + span < window.
        (EnumerationRule::Icpp2012, true) => DimRule { min_cell: 2, limit: w - 1 },
        // Plain dimension: size >= 1, origin + size < window - 1.
        (EnumerationRule::Icpp2012, false) => DimRule { min_cell: 1, limit: w - 2 },
        (EnumerationRule::Exhaustive, _) => DimRule { min_cell: 1, limit: w - 1 + 1 },
    }
}

/// Enumerate one kind. `window` is the detection-window side (24 in the
/// paper).
pub fn enumerate_kind(kind: FeatureKind, window: u32, rule: EnumerationRule) -> Vec<HaarFeature> {
    // Cells replicated along x / y for each kind.
    let (nx, ny) = match kind {
        FeatureKind::EdgeH => (2u8, 1u8),
        FeatureKind::EdgeV => (1, 2),
        FeatureKind::LineH => (3, 1),
        FeatureKind::LineV => (1, 3),
        FeatureKind::CenterSurround => (3, 3),
        FeatureKind::Diagonal => (2, 2),
    };
    let rx = rules(rule, window, nx > 1);
    let ry = rules(rule, window, ny > 1);
    let mut out = Vec::new();
    let mut w = rx.min_cell;
    while nx * w <= rx.limit {
        let span_x = nx * w;
        let mut h = ry.min_cell;
        while ny * h <= ry.limit {
            let span_y = ny * h;
            for y in 0..=(ry.limit - span_y) {
                for x in 0..=(rx.limit - span_x) {
                    out.push(HaarFeature::from_params(kind, x, y, w, h));
                }
            }
            h += 1;
        }
        w += 1;
    }
    out
}

/// Enumerate all kinds (Table I order) into one vector.
pub fn enumerate_features(window: u32, rule: EnumerationRule) -> Vec<HaarFeature> {
    let mut out = Vec::new();
    for kind in FeatureKind::ALL {
        out.extend(enumerate_kind(kind, window, rule));
    }
    out
}

/// Counts per Table I row `(edge, line, center_surround, diagonal)`.
pub fn table1_counts(window: u32, rule: EnumerationRule) -> [usize; 4] {
    let mut counts = [0usize; 4];
    for kind in FeatureKind::ALL {
        counts[kind.table1_row()] += enumerate_kind(kind, window, rule).len();
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table I, verbatim.
    #[test]
    fn icpp2012_rule_reproduces_table1_exactly() {
        let c = table1_counts(24, EnumerationRule::Icpp2012);
        assert_eq!(c[0], 55_660, "edge");
        assert_eq!(c[1], 31_878, "line");
        assert_eq!(c[2], 3_969, "center-surround");
        assert_eq!(c[3], 12_100, "diagonal");
        assert_eq!(c.iter().sum::<usize>(), 103_607);
    }

    #[test]
    fn horizontal_and_vertical_counts_are_symmetric() {
        for rule in [EnumerationRule::Icpp2012, EnumerationRule::Exhaustive] {
            assert_eq!(
                enumerate_kind(FeatureKind::EdgeH, 24, rule).len(),
                enumerate_kind(FeatureKind::EdgeV, 24, rule).len()
            );
            assert_eq!(
                enumerate_kind(FeatureKind::LineH, 24, rule).len(),
                enumerate_kind(FeatureKind::LineV, 24, rule).len()
            );
        }
    }

    #[test]
    fn every_enumerated_feature_fits_the_window() {
        for rule in [EnumerationRule::Icpp2012, EnumerationRule::Exhaustive] {
            for f in enumerate_features(24, rule) {
                assert!(f.fits(24), "{f:?} escapes the window under {rule:?}");
            }
        }
    }

    #[test]
    fn no_duplicates_in_enumeration() {
        let feats = enumerate_features(24, EnumerationRule::Icpp2012);
        let mut seen = std::collections::HashSet::new();
        for f in &feats {
            assert!(seen.insert((f.kind.id(), f.x, f.y, f.w, f.h)), "duplicate {f:?}");
        }
    }

    #[test]
    fn exhaustive_rule_matches_closed_forms() {
        // 2-rect horizontal in a W window: sum_{w=1..W/2} (W - 2w + 1) * sum_{h=1..W} (W - h + 1).
        let w_count: usize = (1..=12).map(|w| 24 - 2 * w + 1).sum();
        let h_count: usize = (1..=24).map(|h| 24 - h + 1).sum();
        assert_eq!(
            enumerate_kind(FeatureKind::EdgeH, 24, EnumerationRule::Exhaustive).len(),
            w_count * h_count
        );
        // Classic Viola-Jones figure: 43,200 two-rect features per
        // orientation in a 24x24 window.
        assert_eq!(w_count * h_count, 43_200);
    }

    #[test]
    fn smaller_windows_enumerate_fewer_features() {
        let big = enumerate_features(24, EnumerationRule::Icpp2012).len();
        let small = enumerate_features(20, EnumerationRule::Icpp2012).len();
        assert!(small < big);
        assert!(small > 0);
    }
}
