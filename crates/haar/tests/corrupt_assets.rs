//! Corrupt-asset matrix: every mutation of a real trained cascade file
//! must be rejected with a typed [`ParseError`] — never a panic, never a
//! silently-wrong cascade. The mutations cover the hardening checklist:
//! truncated files, out-of-window rectangles, non-finite thresholds and
//! stage-count mismatches, plus zero-area geometry and absurd encoded
//! values.

use std::path::PathBuf;

use fd_haar::cascade::CascadeError;
use fd_haar::io::{from_text, load};
use fd_haar::Cascade;

fn asset_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../assets").join(name)
}

fn asset_text() -> String {
    std::fs::read_to_string(asset_path("ours-gentle.cascade")).expect("trained asset present")
}

/// The pristine asset parses, validates and loads.
#[test]
fn the_trained_asset_is_clean() {
    let c = from_text(&asset_text()).expect("asset parses");
    assert_eq!(c.stages.len(), 25);
    c.validate().expect("asset validates");
    let via_load = load(asset_path("ours-gentle.cascade")).expect("load succeeds");
    assert_eq!(via_load, c);
}

#[test]
fn the_adaboost_asset_is_clean_too() {
    load(asset_path("opencv-like-ada.cascade")).expect("second asset loads");
}

/// Apply `mutate` to the asset text and assert typed rejection whose
/// message mentions `needle`.
fn assert_rejected(mutate: impl Fn(&str) -> String, needle: &str) {
    let text = mutate(&asset_text());
    let err = from_text(&text).expect_err("mutation must be rejected");
    assert!(
        err.message.contains(needle),
        "expected message containing `{needle}`, got: {err}"
    );
}

#[test]
fn truncated_file_is_rejected() {
    // Cut mid-stage: the parser runs out of stump lines.
    for keep in [1, 3, 5, 100, 400] {
        let text: String =
            asset_text().lines().take(keep).collect::<Vec<_>>().join("\n");
        let err = from_text(&text).expect_err("truncation must be rejected");
        assert!(err.message.contains("unexpected end"), "keep {keep}: {err}");
    }
    // The empty file too.
    assert!(from_text("").is_err());
}

#[test]
fn out_of_window_rect_is_rejected() {
    // Shift a stump's x far outside the 24-px window. Kind 5 at x=6 with
    // w=3 spans 2w=6 wide; x=200 escapes (and must not overflow u8
    // rectangle math into a panic).
    assert_rejected(
        |t| t.replacen("stump 5 6 8 3 5", "stump 5 200 8 3 5", 1),
        "escapes the window",
    );
    // Cell size blown up so the extent overflows even from x=0.
    assert_rejected(
        |t| t.replacen("stump 5 6 8 3 5", "stump 5 0 0 200 200", 1),
        "escapes the window",
    );
}

#[test]
fn nan_and_inf_thresholds_are_rejected() {
    // Stage threshold NaN / inf.
    assert_rejected(
        |t| t.replacen("stage 0 -0.53580487 5", "stage 0 NaN 5", 1),
        "non-finite stage threshold",
    );
    assert_rejected(
        |t| t.replacen("stage 0 -0.53580487 5", "stage 0 inf 5", 1),
        "non-finite stage threshold",
    );
    // Leaf value NaN.
    assert_rejected(
        |t| t.replacen("0.7160332 -0.95791936", "NaN -0.95791936", 1),
        "non-finite leaf",
    );
}

#[test]
fn stage_count_mismatch_is_rejected() {
    // Header claims more stages than the file holds.
    assert_rejected(|t| t.replacen("stages 25", "stages 26", 1), "unexpected end");
    // Header claims fewer: the parser stops early and the extra stage
    // line is simply unread — but re-numbering an interior stage breaks
    // the monotone stage-index contract.
    assert_rejected(|t| t.replacen("stage 1 ", "stage 7 ", 1), "expected 1");
}

#[test]
fn zero_area_features_are_rejected() {
    assert_rejected(
        |t| t.replacen("stump 5 6 8 3 5", "stump 5 6 8 0 5", 1),
        "zero-area feature",
    );
    assert_rejected(
        |t| t.replacen("stump 5 6 8 3 5", "stump 5 6 8 3 0", 1),
        "zero-area feature",
    );
}

#[test]
fn absurd_values_fail_semantic_validation() {
    // A stump threshold outside the packed i16 encoding range.
    assert_rejected(
        |t| t.replacen("stump 5 6 8 3 5 -91", "stump 5 6 8 3 5 99999999", 1),
        "cascade validation",
    );
    // A leaf beyond the quantizer's representable magnitude.
    assert_rejected(
        |t| t.replacen("0.7160332 -0.95791936", "50000.0 -0.95791936", 1),
        "cascade validation",
    );
}

#[test]
fn bad_window_sizes_fail_validation() {
    // Features trained for 24 px escape a smaller window: the per-stump
    // extent check fires first and carries the offending line number.
    for shrunk in ["window 3", "window 9"] {
        let err = from_text(&asset_text().replacen("window 24", shrunk, 1)).unwrap_err();
        assert!(err.message.contains("escapes the window"), "{shrunk}: {err}");
        assert!(err.line > 0, "{shrunk}: {err}");
    }
}

/// `Cascade::validate` itself reports typed variants for
/// programmatically-built bad cascades (not just file parses).
#[test]
fn validate_reports_typed_variants() {
    let empty = Cascade::new("x", 24);
    assert!(matches!(empty.validate(), Err(CascadeError::EmptyCascade)));

    let mut bad_window = from_text(&asset_text()).unwrap();
    bad_window.window = 200;
    assert!(matches!(bad_window.validate(), Err(CascadeError::BadWindow { .. })));

    let mut nan_stage = from_text(&asset_text()).unwrap();
    nan_stage.stages[3].threshold = f32::NAN;
    assert!(matches!(
        nan_stage.validate(),
        Err(CascadeError::NonFiniteStageThreshold { stage: 3 })
    ));

    // A stage whose threshold no window can reach is dead weight: the
    // cascade would reject everything from that stage on.
    let mut unsat = from_text(&asset_text()).unwrap();
    unsat.stages[2].threshold = 1.0e6;
    assert!(matches!(
        unsat.validate(),
        Err(CascadeError::UnsatisfiableStage { stage: 2, .. })
    ));
}

/// Mutations must never panic, even when they slip past one check and
/// hit another: sweep a matrix of single-token substitutions.
#[test]
fn mutation_matrix_never_panics() {
    let base = asset_text();
    let mutations: &[(&str, &str)] = &[
        ("cascade v1", "cascade v2"),
        ("window 24", "window 0"),
        ("window 24", "window 4294967295"),
        ("stages 25", "stages 0"),
        ("stages 25", "stages abc"),
        ("stage 0 ", "stage 24 "),
        ("stump 5 6 8 3 5", "stump 99 6 8 3 5"),
        ("stump 5 6 8 3 5", "stump 5 255 255 255 255"),
        ("stump 5 6 8 3 5 -91", "stump 5 6 8 3 5 not-a-number"),
        ("0.7160332", "-inf"),
    ];
    for (from, to) in mutations {
        let text = base.replacen(from, to, 1);
        assert_ne!(&text, &base, "mutation `{from}` -> `{to}` must apply");
        // Typed error, not a panic; the clean prefix must not leak out.
        let r = from_text(&text);
        assert!(r.is_err(), "mutation `{from}` -> `{to}` must be rejected");
    }
}
