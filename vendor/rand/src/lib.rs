//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no crates.io access, so the workspace patches
//! `rand` to this implementation (see `vendor/README.md`). It covers the
//! API surface the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::random`, `Rng::random_range` — with a deterministic xoshiro256++
//! generator. Streams are *not* bit-compatible with upstream `rand`;
//! everything in this repo that consumes randomness is seeded and only
//! relies on determinism, not on a specific stream.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of `T` from its "standard" distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`Range` or `RangeInclusive`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Sample `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable without parameters (`rand`'s `StandardUniform`).
pub trait Standard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]` (`rand`'s
/// `SampleUniform` analogue). Blanket `SampleRange` impls below hang off
/// this trait so type inference unifies `Range<T>` with the target type
/// (per-type impls would leave float literals to default to `f64`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                assert!(span > 0, "empty range");
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                let unit: $t = Standard::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream rand does for small seeds.
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-2..=2);
            assert!((-2..=2).contains(&v));
            let f: f64 = rng.random_range(0.45..0.65);
            assert!((0.45..0.65).contains(&f));
            let u: usize = rng.random_range(0..13);
            assert!(u < 13);
        }
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.random();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
