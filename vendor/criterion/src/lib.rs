//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset of the criterion API the workspace's benches
//! use (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, `Throughput`, `BenchmarkId`, the `criterion_group!`
//! / `criterion_main!` macros) with a simple fixed-budget measurement
//! loop: warm up briefly, then time batches until the sample budget is
//! spent, and print mean/min per-iteration time (plus derived
//! throughput). There is no statistical analysis, HTML report, or
//! baseline comparison — the stub exists so `cargo bench` compiles and
//! produces honest wall-clock numbers offline.

use std::time::{Duration, Instant};

/// Throughput annotation; used to derive elements/sec or bytes/sec.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Top-level driver handed to each `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 50, measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Upstream parses CLI args here; the stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let full = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        let Some(stats) = b.stats() else {
            println!("{full:<56} no samples");
            return;
        };
        let rate = self.throughput.map(|t| {
            let per_sec = |n: u64| n as f64 / stats.mean.max(1e-12);
            match t {
                Throughput::Elements(n) => format!("  {:>12.3e} elem/s", per_sec(n)),
                Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                    format!("  {:>12.3e} B/s", per_sec(n))
                }
            }
        });
        println!(
            "{full:<56} mean {:>12}  min {:>12}  ({} samples){}",
            fmt_time(stats.mean),
            fmt_time(stats.min),
            stats.samples,
            rate.unwrap_or_default()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

struct Stats {
    mean: f64,
    min: f64,
    samples: usize,
}

/// Timing loop handed to the bench closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    per_iter_secs: Vec<f64>,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Self { sample_size, measurement_time, per_iter_secs: Vec::new() }
    }

    /// Time `routine`: warm up, pick a batch size targeting ~1 ms per
    /// sample, then record `sample_size` samples or until the time
    /// budget runs out.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up / calibration: how many iterations fit in ~1 ms?
        let cal_start = Instant::now();
        let mut cal_iters = 0u64;
        while cal_start.elapsed() < Duration::from_millis(20) && cal_iters < 1_000_000 {
            std::hint::black_box(routine());
            cal_iters += 1;
        }
        let per_iter = cal_start.elapsed().as_secs_f64() / cal_iters.max(1) as f64;
        let batch = ((1e-3 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let budget_start = Instant::now();
        self.per_iter_secs.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.per_iter_secs.push(t0.elapsed().as_secs_f64() / batch as f64);
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// `iter_batched` with per-sample setup (subset: drops `BatchSize`).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let budget_start = Instant::now();
        self.per_iter_secs.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.per_iter_secs.push(t0.elapsed().as_secs_f64());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    fn stats(&self) -> Option<Stats> {
        if self.per_iter_secs.is_empty() {
            return None;
        }
        let n = self.per_iter_secs.len();
        let mean = self.per_iter_secs.iter().sum::<f64>() / n as f64;
        let min = self.per_iter_secs.iter().copied().fold(f64::INFINITY, f64::min);
        Some(Stats { mean, min, samples: n })
    }
}

/// Batch-size hint for `iter_batched`; ignored by the stub.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Re-export expected by some criterion users.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3).measurement_time(Duration::from_millis(30));
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }
}
