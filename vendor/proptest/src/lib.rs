//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! The build container has no crates.io access, so the workspace patches
//! `proptest` to this crate. It implements the subset of the API the
//! workspace's property tests use:
//!
//! - the `proptest!` macro (with an optional `#![proptest_config(..)]`
//!   inner attribute) expanding each `fn name(arg in strategy, ..)` into
//!   a plain `#[test]` that samples the strategies for `cases` iterations,
//! - `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! - range strategies (`0u8..=255`, `-8.0f32..8.0`), tuple strategies,
//!   `any::<T>()`, `proptest::collection::vec`, `prop::sample::Index`,
//! - `ProptestConfig::with_cases`.
//!
//! Differences from upstream: inputs are drawn from a deterministic
//! per-test generator (seeded by the test name and the case index), there
//! is no shrinking, and `proptest-regressions` files are ignored. A
//! failing case panics with the case index so it can be replayed by
//! rerunning the test (the stream is stable across runs and platforms).

pub mod test_runner {
    /// Subset of proptest's config: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Failure raised by `prop_assert!` family; carried as `Err` out of
    /// the generated test-case closure.
    #[derive(Debug)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic SplitMix64 stream, seeded from the test name hash
    /// and the case index so every test sees an independent, reproducible
    /// input sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(name_hash: u64, case: u32) -> Self {
            Self { state: name_hash ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15) }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// Runs one generated test case; exists so the `proptest!` expansion
    /// avoids an immediately-invoked closure expression.
    pub fn run_case(f: impl FnOnce() -> Result<(), TestCaseError>) -> Result<(), TestCaseError> {
        f()
    }

    /// FNV-1a over the test name, used as the per-test seed base.
    pub fn hash_name(name: &str) -> u64 {
        let mut h = 0xCBF29CE484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for producing random values (no shrinking in the stub).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + (unit as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    lo + (unit as $t) * (hi - lo)
                }
            }
        )*};
    }
    impl_float_ranges!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }

    /// `Just`-style constant strategy, occasionally useful in tests.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            crate::sample::Index::from_raw(rng.next_u64())
        }
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// `any::<T>()`: the canonical full-range strategy for `T`.
pub fn any<T: arbitrary::Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: arbitrary::Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

pub mod sample {
    /// Position-independent index into collections whose length is only
    /// known at use time (`idx.index(len)` maps into `0..len`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        pub fn from_raw(raw: u64) -> Self {
            Self { raw }
        }

        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length distribution for [`vec`]: any `usize` range form.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_tests! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (
        config = ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let name_hash =
                    $crate::test_runner::hash_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(name_hash, case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    let outcome = $crate::test_runner::run_case(|| {
                        $body
                        ::core::result::Result::Ok(())
                    });
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}:\n{}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3u8..10,
            b in -5i32..=5,
            f in 0.25f64..0.75,
            pick in any::<prop::sample::Index>(),
            v in prop::collection::vec(0u32..100, 1..8),
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-5..=5).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v[pick.index(v.len())] < 100);
        }

        #[test]
        fn tuples_compose(xy in (0usize..4, 10usize..14)) {
            prop_assert!(xy.0 < 4 && (10..14).contains(&xy.1));
            prop_assert_eq!(xy.0 + 10, xy.0 + 10);
        }
    }

    #[test]
    fn stream_is_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let mut r1 = crate::test_runner::TestRng::for_case(1, 2);
        let mut r2 = crate::test_runner::TestRng::for_case(1, 2);
        for _ in 0..32 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
