//! Offline stand-in for the `rayon` crate (see `vendor/README.md`).
//!
//! The build container has no crates.io access, so the workspace patches
//! `rayon` to this crate. It reproduces the *semantics* of the small API
//! surface the workspace uses — `par_iter().enumerate().fold(..).map(..)
//! .reduce(..)`, `ThreadPoolBuilder`, `current_num_threads` — but executes
//! sequentially on the calling thread. Results are identical to a real
//! rayon run for the fold/reduce shapes used here (a sequential execution
//! is one valid rayon split); only wall-clock parallelism is lost.
//!
//! The GPU simulator's parallel functional phase deliberately does NOT go
//! through this stub: `fd-gpu` uses `std::thread::scope` directly so host
//! parallelism survives the offline build (see `fd_gpu::exec`).

use std::cell::Cell;

thread_local! {
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads in the current pool (1 outside any pool, matching
/// this stub's sequential execution).
pub fn current_num_threads() -> usize {
    let n = POOL_THREADS.with(|t| t.get());
    if n == 0 {
        1
    } else {
        n
    }
}

/// Pool construction error (never produced by the stub).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: if self.num_threads == 0 { 1 } else { self.num_threads } })
    }
}

/// A "pool" that runs closures on the calling thread while reporting the
/// configured width through [`current_num_threads`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn install<T>(&self, f: impl FnOnce() -> T) -> T {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        let out = f();
        POOL_THREADS.with(|t| t.set(prev));
        out
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Sequential "parallel iterator": a thin wrapper over a std iterator
/// providing the rayon combinators the workspace uses.
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter { inner: self.inner.enumerate() }
    }

    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter { inner: self.inner.map(f) }
    }

    /// Rayon's `fold`: produces one accumulator per split. The sequential
    /// stub uses a single split, so the result is a one-element iterator.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        let acc = self.inner.fold(identity(), fold_op);
        ParIter { inner: std::iter::once(acc) }
    }

    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        let mut op = op;
        self.inner.fold(identity(), &mut op)
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.inner.for_each(f)
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.inner.collect()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.inner.sum()
    }
}

/// `par_iter` on shared slices/collections.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;

    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = std::slice::Iter<'data, T>;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

/// `into_par_iter` on owned collections and ranges.
pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;

    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self.into_iter() }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

pub mod iter {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn fold_map_reduce_matches_sequential() {
        let v: Vec<u64> = (0..100).collect();
        let best = v
            .par_iter()
            .enumerate()
            .fold(|| (0u64, 0usize), |(acc, _), (i, x)| (acc + x, i))
            .map(|(sum, last)| (sum, last))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1.max(b.1)));
        assert_eq!(best, (4950, 99));
    }

    #[test]
    fn pool_reports_configured_width() {
        let pool = crate::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(crate::current_num_threads(), 1);
        let inside = pool.install(crate::current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(crate::current_num_threads(), 1);
    }
}
