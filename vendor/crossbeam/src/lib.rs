//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`).
//!
//! Provides `crossbeam::channel::bounded` backed by
//! `std::sync::mpsc::sync_channel`, which has the same bounded,
//! blocking-producer semantics for the single-producer single-consumer
//! pipeline this workspace uses.

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError};

    /// Bounded blocking channel: `send` blocks when `cap` messages are
    /// queued, errors once the receiver is dropped.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;

        fn into_iter(self) -> Self::IntoIter {
            self.inner.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn bounded_channel_round_trip() {
        let (tx, rx) = channel::bounded::<u32>(4);
        let producer = std::thread::spawn(move || {
            for i in 0..10 {
                if tx.send(i).is_err() {
                    return i;
                }
            }
            10
        });
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(producer.join().unwrap(), 10);
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
